#include "serve/request_queue.h"

#include <utility>

#include "util/metrics.h"

namespace mel::serve {

namespace {

struct QueueMetrics {
  metrics::Gauge* depth;
  metrics::Counter* shed;
};

const QueueMetrics& GetQueueMetrics() {
  static const QueueMetrics m = [] {
    auto& reg = metrics::Registry();
    QueueMetrics qm;
    qm.depth = reg.GetGauge("serve.queue_depth");
    qm.shed = reg.GetCounter("serve.shed_total");
    return qm;
  }();
  return m;
}

}  // namespace

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

RequestQueue::PushResult RequestQueue::Push(PendingLink&& item,
                                            AdmissionPolicy policy) {
  const QueueMetrics& qm = GetQueueMetrics();
  std::unique_lock lock(mu_);
  if (closed_) return PushResult::kClosed;

  if (links_.size() >= capacity_) {
    switch (policy) {
      case AdmissionPolicy::kShed:
        qm.shed->Increment();
        return PushResult::kOverloaded;
      case AdmissionPolicy::kBlock:
        not_full_.wait(lock, [this] {
          return closed_ || links_.size() < capacity_;
        });
        break;
      case AdmissionPolicy::kDeadline: {
        auto has_room = [this] {
          return closed_ || links_.size() < capacity_;
        };
        if (item.deadline ==
            std::chrono::steady_clock::time_point::max()) {
          not_full_.wait(lock, has_room);
        } else if (!not_full_.wait_until(lock, item.deadline, has_room)) {
          return PushResult::kExpired;
        }
        break;
      }
    }
    if (closed_) return PushResult::kClosed;
  }

  links_.push_back(std::move(item));
  qm.depth->Set(static_cast<int64_t>(links_.size()));
  dispatch_.notify_one();
  return PushResult::kAccepted;
}

bool RequestQueue::PushFeedback(PendingFeedback&& feedback) {
  std::lock_guard lock(mu_);
  if (closed_) return false;
  feedback_.push_back(std::move(feedback));
  dispatch_.notify_one();
  return true;
}

bool RequestQueue::PushMutation(PendingMutation&& mutation) {
  std::lock_guard lock(mu_);
  if (closed_) return false;
  mutations_.push_back(std::move(mutation));
  dispatch_.notify_one();
  return true;
}

bool RequestQueue::WaitDispatch(size_t max_batch,
                                std::vector<PendingLink>* batch,
                                std::vector<PendingLink>* expired) {
  batch->clear();
  expired->clear();
  std::unique_lock lock(mu_);
  dispatch_.wait(lock, [this] {
    if (paused_ && !closed_) return false;
    return closed_ || !links_.empty() || !feedback_.empty() ||
           !mutations_.empty();
  });
  if (links_.empty() && feedback_.empty() && mutations_.empty()) {
    return !closed_;
  }

  const auto now = std::chrono::steady_clock::now();
  while (!links_.empty() && batch->size() < max_batch) {
    PendingLink& front = links_.front();
    if (front.deadline <= now) {
      expired->push_back(std::move(front));
    } else {
      batch->push_back(std::move(front));
    }
    links_.pop_front();
  }
  GetQueueMetrics().depth->Set(static_cast<int64_t>(links_.size()));
  not_full_.notify_all();
  return true;
}

void RequestQueue::TakeFeedback(std::vector<PendingFeedback>* out) {
  out->clear();
  std::lock_guard lock(mu_);
  while (!feedback_.empty()) {
    out->push_back(std::move(feedback_.front()));
    feedback_.pop_front();
  }
}

void RequestQueue::TakeMutations(std::vector<PendingMutation>* out) {
  out->clear();
  std::lock_guard lock(mu_);
  while (!mutations_.empty()) {
    out->push_back(std::move(mutations_.front()));
    mutations_.pop_front();
  }
}

void RequestQueue::SetPaused(bool paused) {
  std::lock_guard lock(mu_);
  if (closed_) return;  // shutdown always drains
  paused_ = paused;
  if (!paused_) dispatch_.notify_all();
}

void RequestQueue::Close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  paused_ = false;
  dispatch_.notify_all();
  not_full_.notify_all();
}

size_t RequestQueue::Depth() const {
  std::lock_guard lock(mu_);
  return links_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

}  // namespace mel::serve

#include "serve/link_service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace mel::serve {

namespace {

int64_t NanosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
      .count();
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// serve.* accounting (docs/METRICS.md). Pointers resolved once.
struct ServeMetrics {
  metrics::Counter* requests;
  metrics::Counter* admitted;
  metrics::Counter* responses;
  metrics::Counter* deadline_expired;
  metrics::Counter* shutdown_rejected;
  metrics::Counter* batches;
  metrics::Counter* feedback;
  metrics::Counter* mutations;
  metrics::Counter* mutations_rejected;
  metrics::Counter* barriers;
  metrics::Gauge* inflight;
  metrics::Gauge* epoch;
  metrics::Gauge* qps;
  metrics::Histogram* queue_wait_ns;
  metrics::Histogram* batch_size;
  metrics::Histogram* link_latency_ns;
  metrics::Histogram* batch_link_ns;
  metrics::Histogram* feedback_barrier_ns;
};

const ServeMetrics& GetServeMetrics() {
  static const ServeMetrics m = [] {
    auto& reg = metrics::Registry();
    ServeMetrics sm;
    sm.requests = reg.GetCounter("serve.requests_total");
    sm.admitted = reg.GetCounter("serve.admitted_total");
    sm.responses = reg.GetCounter("serve.responses_total");
    sm.deadline_expired = reg.GetCounter("serve.deadline_expired_total");
    sm.shutdown_rejected = reg.GetCounter("serve.shutdown_rejected_total");
    sm.batches = reg.GetCounter("serve.batches_total");
    sm.feedback = reg.GetCounter("serve.feedback_total");
    sm.mutations = reg.GetCounter("serve.mutations_total");
    sm.mutations_rejected = reg.GetCounter("serve.mutations_rejected_total");
    sm.barriers = reg.GetCounter("serve.barriers_total");
    sm.inflight = reg.GetGauge("serve.inflight");
    sm.epoch = reg.GetGauge("serve.epoch");
    sm.qps = reg.GetGauge("serve.qps");
    sm.queue_wait_ns = reg.GetHistogram("serve.queue_wait_ns");
    sm.batch_size = reg.GetHistogram("serve.batch_size");
    sm.link_latency_ns = reg.GetHistogram("serve.link_latency_ns");
    sm.batch_link_ns = reg.GetHistogram("serve.batch_link_ns");
    sm.feedback_barrier_ns =
        reg.GetHistogram("serve.feedback_barrier_ns");
    return sm;
  }();
  return m;
}

}  // namespace

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kDeadline: return "deadline";
  }
  return "unknown";
}

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kDeadlineExpired: return "deadline_expired";
    case ServeStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

LinkService::LinkService(core::EntityLinker* linker,
                         const ServeOptions& options)
    : linker_(linker), options_(options), queue_(options.queue_capacity) {
  MEL_CHECK(linker != nullptr);
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.warmup_on_start) linker_->WarmUp();
  if (options_.start_paused) queue_.SetPaused(true);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

LinkService::~LinkService() { Stop(); }

std::chrono::steady_clock::time_point LinkService::DeadlineFor(
    const LinkRequest& request,
    std::chrono::steady_clock::time_point submit_time) const {
  int64_t budget = request.deadline_ns != 0 ? request.deadline_ns
                                            : options_.default_deadline_ns;
  if (budget <= 0) return std::chrono::steady_clock::time_point::max();
  return submit_time + std::chrono::nanoseconds(budget);
}

std::future<LinkResponse> LinkService::Submit(LinkRequest request) {
  const ServeMetrics& sm = GetServeMetrics();
  sm.requests->Increment();

  PendingLink pending;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.deadline = DeadlineFor(request, pending.enqueued);
  pending.request = std::move(request);
  std::future<LinkResponse> future = pending.promise.get_future();

  auto reject = [&pending](ServeStatus status) {
    LinkResponse response;
    response.status = status;
    pending.promise.set_value(std::move(response));
  };

  if (stopped_.load(std::memory_order_acquire)) {
    sm.shutdown_rejected->Increment();
    reject(ServeStatus::kShutdown);
    return future;
  }

  switch (queue_.Push(std::move(pending), options_.policy)) {
    case RequestQueue::PushResult::kAccepted: {
      sm.admitted->Increment();
      int64_t expected = 0;
      first_admission_ns_.compare_exchange_strong(
          expected, NowNanos(), std::memory_order_relaxed);
      admitted_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RequestQueue::PushResult::kOverloaded:
      // serve.shed_total is counted inside the queue.
      reject(ServeStatus::kOverloaded);
      break;
    case RequestQueue::PushResult::kExpired:
      sm.deadline_expired->Increment();
      reject(ServeStatus::kDeadlineExpired);
      break;
    case RequestQueue::PushResult::kClosed:
      sm.shutdown_rejected->Increment();
      reject(ServeStatus::kShutdown);
      break;
  }
  return future;
}

LinkResponse LinkService::LinkSync(LinkRequest request) {
  return Submit(std::move(request)).get();
}

std::future<uint64_t> LinkService::SubmitFeedback(kb::EntityId entity,
                                                  const kb::Tweet& tweet) {
  PendingFeedback pending;
  pending.entity = entity;
  pending.tweet = tweet;
  std::future<uint64_t> future = pending.ack.get_future();
  if (stopped_.load(std::memory_order_acquire) ||
      !queue_.PushFeedback(std::move(pending))) {
    // PushFeedback left `pending` intact on failure (closed queue).
    pending.ack.set_value(kFeedbackRejected);
    return future;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<uint64_t> LinkService::SubmitMutation(
    const graph::EdgeDelta& delta) {
  PendingMutation pending;
  pending.delta = delta;
  std::future<uint64_t> future = pending.ack.get_future();
  if (!options_.mutation_handler ||
      stopped_.load(std::memory_order_acquire) ||
      !queue_.PushMutation(std::move(pending))) {
    GetServeMetrics().mutations_rejected->Increment();
    // PushMutation left `pending` intact on failure (closed queue).
    pending.ack.set_value(kMutationRejected);
    return future;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void LinkService::Pause() { queue_.SetPaused(true); }

void LinkService::Resume() { queue_.SetPaused(false); }

void LinkService::WaitIdle() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return stopped_.load(std::memory_order_acquire) ||
           finished_.load(std::memory_order_acquire) >=
               admitted_.load(std::memory_order_acquire);
  });
}

void LinkService::Stop() {
  std::lock_guard stop_lock(stop_mu_);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard idle_lock(idle_mu_);
    stopped_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
}

void LinkService::NotifyIdle() {
  // Taking and releasing the mutex pairs the counter updates with the
  // WaitIdle predicate check, so a waiter between its predicate read and
  // its block cannot miss this wakeup.
  { std::lock_guard lock(idle_mu_); }
  idle_cv_.notify_all();
}

void LinkService::DispatcherLoop() {
  std::vector<PendingLink> batch;
  std::vector<PendingLink> expired;
  while (queue_.WaitDispatch(options_.max_batch, &batch, &expired)) {
    ExpireBatch(&expired);
    RunBatch(&batch);
    ApplyWriteBarrier();
    NotifyIdle();
  }
  // Closed and fully drained: nothing admitted is left behind.
  NotifyIdle();
}

void LinkService::ExpireBatch(std::vector<PendingLink>* expired) {
  if (expired->empty()) return;
  const ServeMetrics& sm = GetServeMetrics();
  const uint64_t e = epoch_.load(std::memory_order_relaxed);
  for (PendingLink& item : *expired) {
    LinkResponse response;
    response.status = ServeStatus::kDeadlineExpired;
    response.epoch = e;
    item.promise.set_value(std::move(response));
    sm.deadline_expired->Increment();
  }
  finished_.fetch_add(expired->size(), std::memory_order_release);
}

void LinkService::RunBatch(std::vector<PendingLink>* batch) {
  if (batch->empty()) return;
  const ServeMetrics& sm = GetServeMetrics();
  const uint64_t e = epoch_.load(std::memory_order_relaxed);
  const uint32_t n = static_cast<uint32_t>(batch->size());
  const auto dispatch_start = std::chrono::steady_clock::now();

  sm.batches->Increment();
  sm.batch_size->Record(n);
  sm.inflight->Set(n);

  // The batch is a pure read region: feedback only runs at the barrier
  // below, so concurrent LinkMention calls satisfy the WarmUp contract.
  util::ThreadPool::Shared().ParallelFor(
      0, n, /*grain=*/1,
      [&](size_t i) {
        PendingLink& item = (*batch)[i];
        LinkResponse response;
        response.status = ServeStatus::kOk;
        response.epoch = e;
        response.batch_size = n;
        response.queue_wait_ns =
            NanosBetween(item.enqueued, dispatch_start);
        response.result = linker_->LinkMention(
            item.request.mention, item.request.user, item.request.now);
        const auto done = std::chrono::steady_clock::now();
        sm.queue_wait_ns->Record(
            static_cast<uint64_t>(std::max<int64_t>(
                0, response.queue_wait_ns)));
        sm.link_latency_ns->Record(static_cast<uint64_t>(
            std::max<int64_t>(0, NanosBetween(item.enqueued, done))));
        item.promise.set_value(std::move(response));
      },
      options_.num_workers);

  sm.batch_link_ns->Record(static_cast<uint64_t>(std::max<int64_t>(
      0, NanosBetween(dispatch_start, std::chrono::steady_clock::now()))));
  sm.inflight->Set(0);
  sm.responses->Increment(n);
  completed_ok_.fetch_add(n, std::memory_order_relaxed);
  finished_.fetch_add(n, std::memory_order_release);

  // Sustained throughput since the first admission (the ROADMAP's
  // "sustained QPS" as a first-class metric).
  const int64_t started = first_admission_ns_.load(std::memory_order_relaxed);
  const int64_t elapsed = NowNanos() - started;
  if (started != 0 && elapsed > 0) {
    sm.qps->Set(static_cast<int64_t>(
        completed_ok_.load(std::memory_order_relaxed) * 1e9 /
        static_cast<double>(elapsed)));
  }
}

void LinkService::ApplyWriteBarrier() {
  std::vector<PendingFeedback> feedback;
  std::vector<PendingMutation> mutations;
  queue_.TakeFeedback(&feedback);
  queue_.TakeMutations(&mutations);
  if (feedback.empty() && mutations.empty()) return;
  const ServeMetrics& sm = GetServeMetrics();
  const auto barrier_start = std::chrono::steady_clock::now();

  // Writers run strictly between batches (FIFO submission order,
  // feedback before mutations), so no reader can observe a torn epoch:
  // either a batch sees none of this barrier's writes (it ran before) or
  // all of them (it runs after the single epoch bump below).
  for (const PendingFeedback& item : feedback) {
    linker_->ConfirmLink(item.entity, item.tweet);
  }
  // The handler mutates the graph and patches / invalidates every
  // registered reachability index while no reader is in flight.
  for (const PendingMutation& item : mutations) {
    options_.mutation_handler(item.delta);
  }
  // Re-establish the concurrent-read contract for the next batch:
  // re-sorts mutated posting lists and refills the influential-user
  // entries the writes invalidated.
  linker_->WarmUp();

  const uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  sm.epoch->Set(static_cast<int64_t>(e));
  sm.barriers->Increment();
  sm.feedback->Increment(feedback.size());
  sm.mutations->Increment(mutations.size());
  for (PendingFeedback& item : feedback) {
    item.ack.set_value(e);
  }
  for (PendingMutation& item : mutations) {
    item.ack.set_value(e);
  }
  finished_.fetch_add(feedback.size() + mutations.size(),
                      std::memory_order_release);
  sm.feedback_barrier_ns->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, NanosBetween(barrier_start,
                                        std::chrono::steady_clock::now()))));
}

}  // namespace mel::serve

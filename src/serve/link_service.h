#ifndef MEL_SERVE_LINK_SERVICE_H_
#define MEL_SERVE_LINK_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/entity_linker.h"
#include "graph/mutation.h"
#include "serve/request_queue.h"
#include "serve/types.h"

namespace mel::serve {

/// \brief Tunables of the online linking service.
struct ServeOptions {
  /// Pool participants linking one micro-batch (passed as max_threads to
  /// the shared util::ThreadPool); 0 = the whole pool.
  uint32_t num_workers = 0;
  /// Micro-batch cap: link requests grouped per epoch. 1 degenerates to
  /// one-at-a-time serving (the bench baseline).
  uint32_t max_batch = 32;
  /// Admission cap of the request queue.
  size_t queue_capacity = 1024;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// Default wall-clock serving budget applied to requests that carry
  /// deadline_ns == 0; 0 = no deadline.
  int64_t default_deadline_ns = 0;
  /// Construct the service paused (no dispatch until Resume()). Tests use
  /// this to control batch boundaries deterministically.
  bool start_paused = false;
  /// Call linker->WarmUp() before serving the first batch, making the
  /// concurrent-read contract hold from request one. Disable only when
  /// the caller already warmed the linker.
  bool warmup_on_start = true;
  /// Applies one follow-edge delta at the epoch barrier, while no batch
  /// is in flight — typically reach::ReachMaintainer::ApplyDelta, which
  /// mutates the graph and patches or invalidates every registered
  /// reachability index. Unset: SubmitMutation rejects immediately with
  /// kMutationRejected. The handler runs on the dispatcher thread with
  /// no concurrent readers, so it needs no internal locking.
  std::function<void(const graph::EdgeDelta&)> mutation_handler;
};

/// \brief The long-lived online linking service: a bounded request queue
/// feeding EntityLinker workers on the shared thread pool, micro-batching
/// link requests per epoch and interleaving ConfirmLink feedback writes
/// behind an epoch barrier.
///
/// One dispatcher thread owns the serving loop:
///
///   wait -> admit batch -> link batch (ParallelFor, read-only) ->
///   complete futures -> apply pending feedback + graph mutations
///   (serial, no readers) -> WarmUp -> bump epoch (once) -> repeat
///
/// Because every ConfirmLink and every graph mutation runs between
/// batches, readers never observe a torn epoch: all responses of one
/// batch carry the same epoch stamp,
/// and the batch is bit-identical to linking its members one at a time
/// against the same epoch's knowledgebase state (asserted by
/// tests/serve_test.cc and bench_serving). The micro-batch is also what
/// amortizes cache work: the recency-propagation memoization and the
/// influential-user index are invalidated per barrier, not per request,
/// so a batch of B requests pays each cluster recomputation once instead
/// of up to B times under interleaved feedback.
///
/// Thread safety: Submit / SubmitFeedback / LinkSync may be called from
/// any number of threads. Stop() drains everything already admitted.
class LinkService {
 public:
  /// The linker (and everything it references) must outlive the service.
  /// The service assumes exclusive ownership of linker mutation: no other
  /// thread may call ConfirmLink / WarmUp / mutate the CKB while the
  /// service runs — route feedback through SubmitFeedback instead.
  LinkService(core::EntityLinker* linker, const ServeOptions& options);
  ~LinkService();

  LinkService(const LinkService&) = delete;
  LinkService& operator=(const LinkService&) = delete;

  /// Submits one link request; the future resolves with the terminal
  /// outcome (kOk result, or kOverloaded / kDeadlineExpired / kShutdown).
  /// Under kBlock (and kDeadline, up to the deadline) this call blocks
  /// while the queue is at capacity — that is the backpressure.
  std::future<LinkResponse> Submit(LinkRequest request);

  /// Submit + wait. Convenience for interactive callers.
  LinkResponse LinkSync(LinkRequest request);

  /// Queues a ConfirmLink write; it is applied at the next epoch barrier,
  /// serialized after the in-flight batch. The future resolves with the
  /// first epoch whose responses observe the write (kFeedbackRejected if
  /// the service stopped first).
  std::future<uint64_t> SubmitFeedback(kb::EntityId entity,
                                       const kb::Tweet& tweet);

  /// Queues a follow-edge delta; it is applied through
  /// ServeOptions::mutation_handler at the next epoch barrier, after the
  /// in-flight batch and after the barrier's feedback writes. The future
  /// resolves with the first epoch whose responses observe the mutated
  /// graph (kMutationRejected if the service stopped first or no handler
  /// is installed). Feedback and mutations landing at the same barrier
  /// share a single epoch bump.
  std::future<uint64_t> SubmitMutation(const graph::EdgeDelta& delta);

  /// Dispatch control (admission is unaffected): while paused, requests
  /// and feedback accumulate in the queue. Stop() implies Resume().
  void Pause();
  void Resume();

  /// Blocks until every admitted request and feedback write has reached
  /// its terminal state and the service is idle. No-op when stopped.
  void WaitIdle();

  /// Stops admission, drains every already-admitted request and feedback
  /// write, and joins the dispatcher. Idempotent; called by ~LinkService.
  void Stop();

  /// Number of feedback barriers applied so far (the epoch stamped onto
  /// responses). Monotone.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// kOk responses delivered so far.
  uint64_t completed_ok() const {
    return completed_ok_.load(std::memory_order_relaxed);
  }

  const ServeOptions& options() const { return options_; }

 private:
  void DispatcherLoop();
  void NotifyIdle();
  void RunBatch(std::vector<PendingLink>* batch);
  void ExpireBatch(std::vector<PendingLink>* expired);
  void ApplyWriteBarrier();
  std::chrono::steady_clock::time_point DeadlineFor(
      const LinkRequest& request,
      std::chrono::steady_clock::time_point submit_time) const;

  core::EntityLinker* linker_;
  ServeOptions options_;
  RequestQueue queue_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> completed_ok_{0};

  // Idle tracking: admitted counts every accepted link request and
  // feedback write; finished counts terminal outcomes (response set or
  // feedback acked). WaitIdle waits for equality with an empty queue.
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> finished_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  // QPS accounting: first admission starts the clock.
  std::atomic<int64_t> first_admission_ns_{0};

  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;  // serializes Stop callers
  std::thread dispatcher_;
};

}  // namespace mel::serve

#endif  // MEL_SERVE_LINK_SERVICE_H_

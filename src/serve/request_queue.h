#ifndef MEL_SERVE_REQUEST_QUEUE_H_
#define MEL_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "graph/mutation.h"
#include "kb/types.h"
#include "serve/types.h"

namespace mel::serve {

/// \brief A link request waiting for dispatch, with its completion
/// promise and wall-clock bookkeeping.
struct PendingLink {
  LinkRequest request;
  std::promise<LinkResponse> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// steady_clock::time_point::max() when the request has no deadline.
  std::chrono::steady_clock::time_point deadline;
};

/// \brief A ConfirmLink write waiting for the next epoch barrier.
struct PendingFeedback {
  kb::EntityId entity = kb::kInvalidEntity;
  kb::Tweet tweet;
  /// Resolved with the epoch from which the write is visible
  /// (kFeedbackRejected if the service stopped first).
  std::promise<uint64_t> ack;
};

/// \brief A follow-edge mutation waiting for the next epoch barrier.
struct PendingMutation {
  graph::EdgeDelta delta;
  /// Resolved with the epoch from which the mutated graph (and every
  /// patched reachability index) is visible (kMutationRejected if the
  /// service stopped first or no mutation handler is installed).
  std::promise<uint64_t> ack;
};

/// \brief Bounded MPMC queue feeding the LinkService dispatcher.
///
/// Producers (any number of client threads) push link requests under an
/// admission policy, and feedback writes and graph mutations without a
/// bound (both are a few dozen bytes and must never be dropped — they
/// are the paper's online learning and follow-stream signals). The
/// single consumer (the dispatcher) pops link requests up to a batch cap
/// and takes the pending feedback and mutations separately, so the
/// service can order all writes behind the epoch barrier.
///
/// The queue is the admission controller: kBlock producers wait on the
/// not-full condition, kShed producers fail fast, kDeadline producers
/// wait with a timeout. Expired entries are separated out at dispatch
/// time so they never consume linker time.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  enum class PushResult : uint8_t {
    kAccepted,
    kOverloaded,  // kShed and the queue was full
    kExpired,     // kDeadline and the deadline passed while waiting
    kClosed,      // Close() was called before admission
  };

  /// Admits one link request under `policy`. May block (kBlock /
  /// kDeadline). On kAccepted the queue owns the promise.
  PushResult Push(PendingLink&& item, AdmissionPolicy policy);

  /// Queues one feedback write (unbounded). Returns false when closed.
  bool PushFeedback(PendingFeedback&& feedback);

  /// Queues one graph mutation (unbounded, like feedback: deltas are
  /// tiny and are the streaming follow/unfollow signal). Returns false
  /// when closed.
  bool PushMutation(PendingMutation&& mutation);

  /// Blocks until link requests or feedback are dispatchable (or the
  /// queue is closed and fully drained, in which case it returns false).
  /// Pops up to `max_batch` link requests whose deadline has not passed
  /// into `batch` and every already-expired entry into `expired`; either
  /// may come back empty when only feedback is pending. While paused
  /// (SetPaused(true)) nothing is dispatched until Resume or Close.
  bool WaitDispatch(size_t max_batch, std::vector<PendingLink>* batch,
                    std::vector<PendingLink>* expired);

  /// Moves every pending feedback write into `out` (FIFO submission
  /// order), without blocking. Called by the dispatcher at the barrier.
  void TakeFeedback(std::vector<PendingFeedback>* out);

  /// Moves every pending graph mutation into `out` (FIFO submission
  /// order), without blocking. Called by the dispatcher at the barrier.
  void TakeMutations(std::vector<PendingMutation>* out);

  /// Pauses / resumes dispatch (admission is unaffected). Used by tests
  /// to control batch boundaries deterministically and by operators to
  /// quiesce the linker. Close() clears the pause so shutdown drains.
  void SetPaused(bool paused);

  /// Stops admission (Push* fail from now on), clears any pause, and
  /// wakes every waiter. Already-admitted requests and feedback remain
  /// dispatchable so the service drains them.
  void Close();

  size_t capacity() const { return capacity_; }
  size_t Depth() const;
  bool closed() const;

 private:
  const size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;   // producers under kBlock/kDeadline
  std::condition_variable dispatch_;   // the dispatcher
  std::deque<PendingLink> links_;
  std::deque<PendingFeedback> feedback_;
  std::deque<PendingMutation> mutations_;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace mel::serve

#endif  // MEL_SERVE_REQUEST_QUEUE_H_

#ifndef MEL_SERVE_TYPES_H_
#define MEL_SERVE_TYPES_H_

#include <cstdint>
#include <string>

#include "core/entity_linker.h"
#include "kb/types.h"

namespace mel::serve {

/// \brief What the admission controller does with a link request that
/// arrives while the queue is at capacity (see docs/SERVING.md for how
/// to choose).
enum class AdmissionPolicy : uint8_t {
  /// Block the producer until a slot frees up (or the service stops).
  /// Backpressure propagates to the client; nothing is ever dropped.
  kBlock,
  /// Reject immediately with ServeStatus::kOverloaded. The client learns
  /// about the overload in O(1) and can retry elsewhere / later.
  kShed,
  /// Block like kBlock, but only until the request's deadline; a request
  /// whose deadline passes while waiting for admission (or while queued —
  /// expired entries are dropped at dispatch) completes with
  /// ServeStatus::kDeadlineExpired.
  kDeadline,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

/// \brief Terminal outcome of a submitted link request.
enum class ServeStatus : uint8_t {
  kOk = 0,
  /// Shed at admission: the queue was at capacity under kShed.
  kOverloaded,
  /// The deadline passed before the request was linked (either while
  /// waiting for admission under kDeadline, or while queued).
  kDeadlineExpired,
  /// Submitted after Stop() — never admitted.
  kShutdown,
};

const char* ServeStatusName(ServeStatus status);

/// \brief One online mention-linking request.
struct LinkRequest {
  std::string mention;
  kb::UserId user = kb::kInvalidUser;
  /// Model time passed through to EntityLinker::LinkMention (the "now" of
  /// the recency window) — decoupled from the wall-clock deadline below.
  kb::Timestamp now = 0;
  /// Wall-clock serving budget in nanoseconds, measured from Submit();
  /// 0 falls back to ServeOptions::default_deadline_ns (where 0 again
  /// means "no deadline").
  int64_t deadline_ns = 0;
};

/// \brief Terminal response delivered through the future returned by
/// LinkService::Submit.
struct LinkResponse {
  ServeStatus status = ServeStatus::kShutdown;
  /// Populated only when status == kOk.
  core::MentionLinkResult result;
  /// Feedback epoch the result observed: the number of feedback barriers
  /// applied before the batch ran. Every response of one micro-batch
  /// carries the same epoch (no torn epochs).
  uint64_t epoch = 0;
  /// Size of the micro-batch this request rode in (kOk only).
  uint32_t batch_size = 0;
  /// Admission-to-dispatch wait (kOk only).
  int64_t queue_wait_ns = 0;
};

/// Sentinel resolved through SubmitFeedback's future when the write was
/// rejected (service stopped before the barrier could apply it).
inline constexpr uint64_t kFeedbackRejected = static_cast<uint64_t>(-1);

/// Sentinel resolved through SubmitMutation's future when the delta was
/// rejected (service stopped first, or no mutation handler installed).
inline constexpr uint64_t kMutationRejected = static_cast<uint64_t>(-1);

}  // namespace mel::serve

#endif  // MEL_SERVE_TYPES_H_

#ifndef MEL_GRAPH_STATS_H_
#define MEL_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"

namespace mel::graph {

/// \brief Summary statistics matching the columns of the paper's Table 5
/// (#node, #edge, avg degree, max degree).
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_out_degree = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;

  std::string ToString() const;
};

GraphStats ComputeStats(const DirectedGraph& g);

/// Nodes sorted by total degree (in + out) descending — the landmark order
/// used by the pruned-labeling construction (Algorithm 2, line 1).
std::vector<NodeId> NodesByDegreeDescending(const DirectedGraph& g);

}  // namespace mel::graph

#endif  // MEL_GRAPH_STATS_H_

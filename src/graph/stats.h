#ifndef MEL_GRAPH_STATS_H_
#define MEL_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"

namespace mel::graph {

/// \brief Summary statistics matching the columns of the paper's Table 5
/// (#node, #edge, avg degree, max degree).
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_out_degree = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;

  std::string ToString() const;
};

GraphStats ComputeStats(const DirectedGraph& g);

/// Total degree (in + out) of every node, computed in one O(|V|) pass.
std::vector<uint64_t> TotalDegrees(const DirectedGraph& g);

/// Nodes sorted by total degree (in + out) descending — the landmark order
/// used by the pruned-labeling construction (Algorithm 2, line 1).
std::vector<NodeId> NodesByDegreeDescending(const DirectedGraph& g);

/// Overload taking degrees precomputed by TotalDegrees, so the sort
/// comparator reads a flat array instead of re-deriving both CSR degrees
/// on every comparison. Callers that already hold the degree vector (the
/// label-index constructions) use this form.
std::vector<NodeId> NodesByDegreeDescending(
    const DirectedGraph& g, const std::vector<uint64_t>& total_degree);

}  // namespace mel::graph

#endif  // MEL_GRAPH_STATS_H_

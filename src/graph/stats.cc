#include "graph/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace mel::graph {

std::string GraphStats::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "nodes=%u edges=%llu avg_deg=%.1f max_out=%u max_in=%u",
                num_nodes, static_cast<unsigned long long>(num_edges),
                avg_out_degree, max_out_degree, max_in_degree);
  return buf;
}

GraphStats ComputeStats(const DirectedGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(u));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(u));
  }
  s.avg_out_degree =
      g.num_nodes() == 0
          ? 0
          : static_cast<double>(g.num_edges()) / g.num_nodes();
  return s;
}

std::vector<uint64_t> TotalDegrees(const DirectedGraph& g) {
  std::vector<uint64_t> degree(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    degree[u] = static_cast<uint64_t>(g.OutDegree(u)) + g.InDegree(u);
  }
  return degree;
}

std::vector<NodeId> NodesByDegreeDescending(const DirectedGraph& g) {
  return NodesByDegreeDescending(g, TotalDegrees(g));
}

std::vector<NodeId> NodesByDegreeDescending(
    const DirectedGraph& g, const std::vector<uint64_t>& total_degree) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return total_degree[a] > total_degree[b];
  });
  return order;
}

}  // namespace mel::graph

#include "graph/components.h"

#include <algorithm>

namespace mel::graph {

std::vector<uint32_t> ComponentAssignment::ComponentSizes() const {
  std::vector<uint32_t> sizes(num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  return sizes;
}

ComponentAssignment WeaklyConnectedComponents(const DirectedGraph& g) {
  const uint32_t n = g.num_nodes();
  ComponentAssignment out;
  out.component.assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (out.component[s] != kInvalidNode) continue;
    uint32_t cid = out.num_components++;
    out.component[s] = cid;
    stack.push_back(s);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.OutNeighbors(u)) {
        if (out.component[v] == kInvalidNode) {
          out.component[v] = cid;
          stack.push_back(v);
        }
      }
      for (NodeId v : g.InNeighbors(u)) {
        if (out.component[v] == kInvalidNode) {
          out.component[v] = cid;
          stack.push_back(v);
        }
      }
    }
  }
  return out;
}

namespace {

// Iterative Tarjan SCC; recursion would overflow on long chains.
struct TarjanFrame {
  NodeId node;
  uint32_t next_edge;
};

}  // namespace

ComponentAssignment StronglyConnectedComponents(const DirectedGraph& g) {
  const uint32_t n = g.num_nodes();
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  std::vector<TarjanFrame> frames;
  uint32_t next_index = 0;

  ComponentAssignment out;
  out.component.assign(n, kInvalidNode);

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      TarjanFrame& frame = frames.back();
      NodeId u = frame.node;
      auto nbrs = g.OutNeighbors(u);
      if (frame.next_edge < nbrs.size()) {
        NodeId v = nbrs[frame.next_edge++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          scc_stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          uint32_t cid = out.num_components++;
          for (;;) {
            NodeId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            out.component[w] = cid;
            if (w == u) break;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace mel::graph

#include "graph/graph_builder.h"

#include <algorithm>

#include "util/logging.h"

namespace mel::graph {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  MEL_CHECK(u < num_nodes_ && v < num_nodes_);
  if (u == v) return;
  edges_.emplace_back(u, v);
}

DirectedGraph GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<uint32_t> out_offsets(num_nodes_ + 1, 0);
  std::vector<NodeId> out_targets(edges_.size());
  for (const auto& [u, v] : edges_) ++out_offsets[u + 1];
  for (uint32_t i = 0; i < num_nodes_; ++i) out_offsets[i + 1] += out_offsets[i];
  {
    std::vector<uint32_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges_) out_targets[cursor[u]++] = v;
  }

  std::vector<uint32_t> in_offsets(num_nodes_ + 1, 0);
  std::vector<NodeId> in_targets(edges_.size());
  for (const auto& [u, v] : edges_) ++in_offsets[v + 1];
  for (uint32_t i = 0; i < num_nodes_; ++i) in_offsets[i + 1] += in_offsets[i];
  {
    std::vector<uint32_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    // Edges are sorted by (u, v); filling in this order keeps each
    // in-neighbour list sorted by source as well.
    for (const auto& [u, v] : edges_) in_targets[cursor[v]++] = u;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return DirectedGraph(num_nodes_, std::move(out_offsets),
                       std::move(out_targets), std::move(in_offsets),
                       std::move(in_targets));
}

}  // namespace mel::graph

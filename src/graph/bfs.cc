#include "graph/bfs.h"

#include <memory>

#include "util/logging.h"

namespace mel::graph {

BfsScratch::BfsScratch(uint32_t num_nodes)
    : dist_(num_nodes, kUnreachable) {}

BfsScratch& BfsScratch::ThreadLocal(uint32_t num_nodes) {
  // Reuse across graphs of the same size is safe: Run resets exactly the
  // entries touched by the previous run before traversing.
  thread_local std::unique_ptr<BfsScratch> scratch;
  if (scratch == nullptr || scratch->dist_.size() != num_nodes) {
    scratch = std::make_unique<BfsScratch>(num_nodes);
  }
  return *scratch;
}

template <bool kForward>
void BfsScratch::Run(const DirectedGraph& g, NodeId source,
                     uint32_t max_hops) {
  MEL_CHECK(g.num_nodes() == dist_.size());
  // Reset only entries touched by the previous run.
  for (NodeId v : touched_) dist_[v] = kUnreachable;
  touched_.clear();
  queue_.clear();

  dist_[source] = 0;
  touched_.push_back(source);
  queue_.push_back(source);
  size_t head = 0;
  while (head < queue_.size()) {
    NodeId u = queue_[head++];
    uint32_t du = dist_[u];
    if (du >= max_hops) continue;
    auto nbrs = kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
    for (NodeId v : nbrs) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        touched_.push_back(v);
        queue_.push_back(v);
      }
    }
  }
}

void BfsScratch::RunForward(const DirectedGraph& g, NodeId source,
                            uint32_t max_hops) {
  Run<true>(g, source, max_hops);
}

void BfsScratch::RunBackward(const DirectedGraph& g, NodeId source,
                             uint32_t max_hops) {
  Run<false>(g, source, max_hops);
}

uint32_t ShortestPathDistance(const DirectedGraph& g, NodeId u, NodeId v,
                              uint32_t max_hops) {
  if (u == v) return 0;
  BfsScratch scratch(g.num_nodes());
  scratch.RunForward(g, u, max_hops);
  return scratch.Distance(v);
}

}  // namespace mel::graph

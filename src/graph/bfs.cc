#include "graph/bfs.h"

#include <cstring>
#include <memory>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/simd/simd.h"

namespace mel::graph {

namespace {

/// A level goes down the word-parallel bitset path when its frontier
/// covers at least this fraction (1/8) of the graph: at that density the
/// branch-per-edge visited check of the sparse loop loses to setting
/// candidate bits unconditionally and filtering whole words at once.
constexpr uint32_t kDenseFrontierDivisor = 8;

}  // namespace

BfsScratch::BfsScratch(uint32_t num_nodes)
    : dist_(num_nodes, kUnreachable),
      visited_words_((num_nodes + 63) / 64, 0),
      next_words_((num_nodes + 63) / 64, 0) {}

BfsScratch& BfsScratch::ThreadLocal(uint32_t num_nodes) {
  // Reuse across graphs of the same size is safe: Run resets exactly the
  // entries touched by the previous run before traversing.
  thread_local std::unique_ptr<BfsScratch> scratch;
  if (scratch == nullptr || scratch->dist_.size() != num_nodes) {
    scratch = std::make_unique<BfsScratch>(num_nodes);
  }
  return *scratch;
}

template <bool kForward>
void BfsScratch::Run(const DirectedGraph& g, NodeId source,
                     uint32_t max_hops) {
  MEL_CHECK(g.num_nodes() == dist_.size());
  // Reset only entries touched by the previous run (the visited bitset
  // mirrors dist_ != kUnreachable, so it resets off the same list).
  for (NodeId v : touched_) {
    dist_[v] = kUnreachable;
    visited_words_[v >> 6] = 0;
  }
  touched_.clear();
  queue_.clear();

  const uint32_t n = g.num_nodes();
  dist_[source] = 0;
  visited_words_[source >> 6] |= uint64_t{1} << (source & 63);
  touched_.push_back(source);
  queue_.push_back(source);

  // Level-synchronous traversal: queue_[level_begin, level_end) is the
  // current frontier, discoveries append behind it. Sparse levels take
  // the classic check-per-edge loop; a frontier covering >= 1/8 of the
  // graph switches to the bitset path — mark every neighbor as a
  // candidate bit unconditionally, strip already-visited nodes with the
  // word-parallel FrontierAndNot kernel, then emit the surviving bits.
  // Emission is in ascending node id rather than edge-discovery order;
  // both are valid BFS orders (Touched() promises the set of reached
  // nodes level by level, and every consumer keys off Distance()).
  const size_t nwords = visited_words_.size();
  size_t level_begin = 0;
  for (uint32_t level = 0; level < max_hops; ++level) {
    const size_t level_end = queue_.size();
    if (level_begin == level_end) break;
    const bool dense =
        (level_end - level_begin) * kDenseFrontierDivisor >= n;
    if (dense) {
      if (metrics::Enabled()) {
        util::simd::GetSimdMetrics().dense_levels->Increment();
      }
      std::memset(next_words_.data(), 0, nwords * sizeof(uint64_t));
      for (size_t h = level_begin; h < level_end; ++h) {
        const NodeId u = queue_[h];
        auto nbrs = kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
        for (NodeId v : nbrs) {
          next_words_[v >> 6] |= uint64_t{1} << (v & 63);
        }
      }
      util::simd::FrontierAndNot(next_words_.data(), visited_words_.data(),
                                 nwords);
      for (size_t w = 0; w < nwords; ++w) {
        uint64_t bits = next_words_[w];
        if (bits == 0) continue;
        visited_words_[w] |= bits;
        while (bits != 0) {
          const NodeId v = static_cast<NodeId>(
              (w << 6) + static_cast<size_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
          dist_[v] = level + 1;
          touched_.push_back(v);
          queue_.push_back(v);
        }
      }
    } else {
      for (size_t h = level_begin; h < level_end; ++h) {
        const NodeId u = queue_[h];
        auto nbrs = kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
        for (NodeId v : nbrs) {
          if (dist_[v] == kUnreachable) {
            dist_[v] = level + 1;
            visited_words_[v >> 6] |= uint64_t{1} << (v & 63);
            touched_.push_back(v);
            queue_.push_back(v);
          }
        }
      }
    }
    level_begin = level_end;
  }
}

void BfsScratch::RunForward(const DirectedGraph& g, NodeId source,
                            uint32_t max_hops) {
  Run<true>(g, source, max_hops);
}

void BfsScratch::RunBackward(const DirectedGraph& g, NodeId source,
                             uint32_t max_hops) {
  Run<false>(g, source, max_hops);
}

uint32_t ShortestPathDistance(const DirectedGraph& g, NodeId u, NodeId v,
                              uint32_t max_hops) {
  if (u == v) return 0;
  BfsScratch scratch(g.num_nodes());
  scratch.RunForward(g, u, max_hops);
  return scratch.Distance(v);
}

}  // namespace mel::graph

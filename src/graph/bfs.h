#ifndef MEL_GRAPH_BFS_H_
#define MEL_GRAPH_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/directed_graph.h"

namespace mel::graph {

/// Distance value meaning "not reachable within the hop bound".
inline constexpr uint32_t kUnreachable =
    std::numeric_limits<uint32_t>::max();

/// \brief Reusable breadth-first-search scratch space.
///
/// BFS is on the hot path of both index constructions and the naive
/// reachability baseline; this class keeps the distance array allocated
/// across runs and resets only the touched entries.
class BfsScratch {
 public:
  explicit BfsScratch(uint32_t num_nodes);

  /// A per-thread scratch sized for num_nodes, recreated when the size
  /// changes. Lets query objects stay stateless (and therefore safe for
  /// concurrent reads) without paying an O(|V|) allocation per call.
  static BfsScratch& ThreadLocal(uint32_t num_nodes);

  /// Runs a forward (out-edge) BFS from source up to max_hops levels.
  /// Afterwards Distance(v) is valid for every touched node.
  void RunForward(const DirectedGraph& g, NodeId source, uint32_t max_hops);

  /// Runs a backward (in-edge) BFS from source up to max_hops levels.
  void RunBackward(const DirectedGraph& g, NodeId source, uint32_t max_hops);

  /// Distance from the last run's source (kUnreachable if untouched).
  uint32_t Distance(NodeId v) const { return dist_[v]; }

  /// Nodes reached by the last run, level by level (includes the
  /// source). Within a level the order is edge-discovery order for
  /// sparse levels and ascending node id for dense (bitset) levels;
  /// callers must treat it as a per-level set keyed by Distance().
  const std::vector<NodeId>& Touched() const { return touched_; }

 private:
  template <bool kForward>
  void Run(const DirectedGraph& g, NodeId source, uint32_t max_hops);

  std::vector<uint32_t> dist_;
  std::vector<NodeId> touched_;
  std::vector<NodeId> queue_;
  // Bitsets for the dense-level path (one bit per node): nodes already
  // assigned a distance, and the candidate frontier of the level being
  // expanded. visited_words_ mirrors dist_ != kUnreachable at all times.
  std::vector<uint64_t> visited_words_;
  std::vector<uint64_t> next_words_;
};

/// Single-shot shortest-path distance from u to v bounded by max_hops.
/// Returns kUnreachable when there is no path within the bound.
uint32_t ShortestPathDistance(const DirectedGraph& g, NodeId u, NodeId v,
                              uint32_t max_hops);

}  // namespace mel::graph

#endif  // MEL_GRAPH_BFS_H_

#ifndef MEL_GRAPH_MUTATION_H_
#define MEL_GRAPH_MUTATION_H_

#include <cstdint>

#include "graph/directed_graph.h"

namespace mel::graph {

/// \brief A single follow-graph mutation.
///
/// kInsert adds the edge u -> v ("u starts following v"); kErase removes
/// it ("u unfollows v"). Deltas are the unit of the incremental
/// maintenance contract (reach::ReachMaintainer): the graph is mutated
/// first, then every registered index is offered the delta through
/// WeightedReachability::OnGraphMutation and either patches itself in
/// place, rebuilds, or declares itself unaffected.
struct EdgeDelta {
  enum class Op : uint8_t { kInsert, kErase };

  Op op = Op::kInsert;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
};

}  // namespace mel::graph

#endif  // MEL_GRAPH_MUTATION_H_

#ifndef MEL_GRAPH_COMPONENTS_H_
#define MEL_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"

namespace mel::graph {

/// \brief Result of a component decomposition.
struct ComponentAssignment {
  /// component[v] is the 0-based component id of node v.
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  /// Sizes indexed by component id.
  std::vector<uint32_t> ComponentSizes() const;
};

/// Weakly connected components (edges treated as undirected). Used by the
/// recency propagation network to find clusters of strongly related
/// entities after thresholding edges at theta2 (the paper's Graph-Cut step).
ComponentAssignment WeaklyConnectedComponents(const DirectedGraph& g);

/// Strongly connected components via Tarjan's algorithm (iterative).
ComponentAssignment StronglyConnectedComponents(const DirectedGraph& g);

}  // namespace mel::graph

#endif  // MEL_GRAPH_COMPONENTS_H_

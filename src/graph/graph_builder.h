#ifndef MEL_GRAPH_GRAPH_BUILDER_H_
#define MEL_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/directed_graph.h"

namespace mel::graph {

/// \brief Accumulates edges and materializes an immutable DirectedGraph.
///
/// Self-loops and duplicate edges are silently dropped at Build() time, so
/// generators may add edges without bookkeeping.
class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Records the directed edge u -> v. Both endpoints must be < num_nodes.
  void AddEdge(NodeId u, NodeId v);

  /// Number of edges recorded so far (before deduplication).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Sorts, deduplicates, and builds CSR adjacency in both directions.
  DirectedGraph Build() &&;

 private:
  uint32_t num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace mel::graph

#endif  // MEL_GRAPH_GRAPH_BUILDER_H_

#ifndef MEL_GRAPH_DIRECTED_GRAPH_H_
#define MEL_GRAPH_DIRECTED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace mel::graph {

/// Node identifier. Nodes are dense integers [0, num_nodes).
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// \brief Directed graph in compressed-sparse-row form.
///
/// Stores both forward (out-neighbour) and reverse (in-neighbour) adjacency
/// so that forward and backward BFS — both needed by the 2-hop labeling
/// construction (Algorithm 2 of the paper) — are equally cheap.
///
/// The CSR arrays are mostly immutable; InsertEdge / EraseEdge splice a
/// single edge in or out while keeping both adjacency lists sorted and
/// deduplicated. Each successful splice is O(|V| + |E|) and bumps
/// version(), which index structures use to detect staleness. Mutations
/// are NOT thread-safe against concurrent readers; callers serialize
/// them (see reach::ReachMaintainer and the serving epoch barrier).
///
/// In the followee-follower network an edge u -> v means "u follows v",
/// i.e., v is a followee of u and the out-neighbours of u are exactly the
/// followee set F_u of Eq. 4.
class DirectedGraph {
 public:
  /// Builds from a sorted, deduplicated CSR representation. Most callers
  /// should use GraphBuilder instead.
  DirectedGraph(uint32_t num_nodes, std::vector<uint32_t> out_offsets,
                std::vector<NodeId> out_targets,
                std::vector<uint32_t> in_offsets,
                std::vector<NodeId> in_targets);

  /// Empty graph.
  DirectedGraph() : num_nodes_(0), out_offsets_{0}, in_offsets_{0} {}

  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return out_targets_.size(); }

  /// Out-neighbours of u (its followees), sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbours of u (its followers), sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    return {in_targets_.data() + in_offsets_[u],
            in_targets_.data() + in_offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint32_t InDegree(NodeId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// True if the edge u -> v exists (binary search over out-neighbours).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Adds the edge u -> v, keeping both adjacency lists sorted. Returns
  /// false (and leaves the graph untouched) for self-loops, out-of-range
  /// endpoints, or an edge that already exists.
  bool InsertEdge(NodeId u, NodeId v);

  /// Removes the edge u -> v. Returns false (graph untouched) for
  /// self-loops, out-of-range endpoints, or a missing edge.
  bool EraseEdge(NodeId u, NodeId v);

  /// Monotone counter bumped by every successful InsertEdge / EraseEdge.
  /// A freshly constructed graph starts at version 0.
  uint64_t version() const { return version_; }

  /// Approximate heap footprint of the adjacency arrays, in bytes.
  uint64_t MemoryUsageBytes() const;

 private:
  uint32_t num_nodes_;
  uint64_t version_ = 0;
  std::vector<uint32_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<uint32_t> in_offsets_;
  std::vector<NodeId> in_targets_;
};

}  // namespace mel::graph

#endif  // MEL_GRAPH_DIRECTED_GRAPH_H_

#include "graph/directed_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace mel::graph {

DirectedGraph::DirectedGraph(uint32_t num_nodes,
                             std::vector<uint32_t> out_offsets,
                             std::vector<NodeId> out_targets,
                             std::vector<uint32_t> in_offsets,
                             std::vector<NodeId> in_targets)
    : num_nodes_(num_nodes),
      out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)) {
  MEL_CHECK(out_offsets_.size() == num_nodes_ + 1);
  MEL_CHECK(in_offsets_.size() == num_nodes_ + 1);
  MEL_CHECK(out_offsets_.back() == out_targets_.size());
  MEL_CHECK(in_offsets_.back() == in_targets_.size());
}

bool DirectedGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint64_t DirectedGraph::MemoryUsageBytes() const {
  return (out_offsets_.size() + in_offsets_.size()) * sizeof(uint32_t) +
         (out_targets_.size() + in_targets_.size()) * sizeof(NodeId);
}

}  // namespace mel::graph

#include "graph/directed_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace mel::graph {

DirectedGraph::DirectedGraph(uint32_t num_nodes,
                             std::vector<uint32_t> out_offsets,
                             std::vector<NodeId> out_targets,
                             std::vector<uint32_t> in_offsets,
                             std::vector<NodeId> in_targets)
    : num_nodes_(num_nodes),
      out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)) {
  MEL_CHECK(out_offsets_.size() == num_nodes_ + 1);
  MEL_CHECK(in_offsets_.size() == num_nodes_ + 1);
  MEL_CHECK(out_offsets_.back() == out_targets_.size());
  MEL_CHECK(in_offsets_.back() == in_targets_.size());
}

bool DirectedGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

namespace {

// Splices `value` into the sorted slice [offsets[slot], offsets[slot+1])
// of `targets` and bumps every offset after `slot`.
void SpliceIn(std::vector<uint32_t>& offsets, std::vector<NodeId>& targets,
              NodeId slot, NodeId value) {
  auto begin = targets.begin() + offsets[slot];
  auto end = targets.begin() + offsets[slot + 1];
  targets.insert(std::lower_bound(begin, end, value), value);
  for (size_t i = slot + 1; i < offsets.size(); ++i) ++offsets[i];
}

void SpliceOut(std::vector<uint32_t>& offsets, std::vector<NodeId>& targets,
               NodeId slot, NodeId value) {
  auto begin = targets.begin() + offsets[slot];
  auto end = targets.begin() + offsets[slot + 1];
  auto it = std::lower_bound(begin, end, value);
  MEL_CHECK(it != end && *it == value);
  targets.erase(it);
  for (size_t i = slot + 1; i < offsets.size(); ++i) --offsets[i];
}

}  // namespace

bool DirectedGraph::InsertEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return false;
  if (HasEdge(u, v)) return false;
  SpliceIn(out_offsets_, out_targets_, u, v);
  SpliceIn(in_offsets_, in_targets_, v, u);
  ++version_;
  return true;
}

bool DirectedGraph::EraseEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return false;
  if (!HasEdge(u, v)) return false;
  SpliceOut(out_offsets_, out_targets_, u, v);
  SpliceOut(in_offsets_, in_targets_, v, u);
  ++version_;
  return true;
}

uint64_t DirectedGraph::MemoryUsageBytes() const {
  return (out_offsets_.size() + in_offsets_.size()) * sizeof(uint32_t) +
         (out_targets_.size() + in_targets_.size()) * sizeof(NodeId);
}

}  // namespace mel::graph

#include "reach/reach_cache.h"

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::reach {

namespace {

struct CacheMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* evictions;
};

const CacheMetrics& GetCacheMetrics() {
  static const CacheMetrics m = [] {
    auto& reg = metrics::Registry();
    CacheMetrics cm;
    cm.hits = reg.GetCounter("reach.cache.hits_total");
    cm.misses = reg.GetCounter("reach.cache.misses_total");
    cm.evictions = reg.GetCounter("reach.cache.evictions_total");
    return cm;
  }();
  return m;
}

uint32_t RoundUpPowerOfTwo(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

CachedReachability::CachedReachability(const WeightedReachability* base,
                                       const graph::DirectedGraph* g,
                                       Options options)
    : base_(base),
      g_(g),
      max_entries_per_shard_(options.max_entries_per_shard) {
  MEL_CHECK(options.num_shards > 0);
  uint32_t num_shards = RoundUpPowerOfTwo(options.num_shards);
  shard_mask_ = num_shards - 1;
  shards_ = std::make_unique<Shard[]>(num_shards);
  name_ = std::string("cached+") + base->Name();
}

ReachQueryResult CachedReachability::Query(NodeId u, NodeId v) const {
  const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
  Shard& shard = ShardFor(key);
  const CacheMetrics& cm = GetCacheMetrics();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      cm.hits->Increment();
      return it->second;
    }
  }
  // Miss path runs the backend outside the shard lock, so a slow BFS
  // never blocks hits on the same shard. Racing misses on the same pair
  // both compute; last insert wins with an identical value.
  cm.misses->Increment();
  ReachQueryResult result = base_->Query(u, v);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (max_entries_per_shard_ != 0 &&
        shard.entries.size() >= max_entries_per_shard_ &&
        shard.entries.find(key) == shard.entries.end()) {
      cm.evictions->Increment(shard.entries.size());
      shard.entries.clear();
    }
    shard.entries[key] = result;
  }
  return result;
}

double CachedReachability::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

void CachedReachability::Invalidate() {
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    shards_[s].entries.clear();
  }
}

size_t CachedReachability::ApproxEntries() const {
  size_t total = 0;
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].entries.size();
  }
  return total;
}

uint64_t CachedReachability::IndexSizeBytes() const {
  // Backend plus a rough accounting of the cached entries.
  uint64_t bytes = base_->IndexSizeBytes();
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [key, result] : shards_[s].entries) {
      bytes += sizeof(key) + sizeof(result) +
               result.followees.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

}  // namespace mel::reach

#include "reach/reach_cache.h"

#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::reach {

namespace {

struct CacheMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* evictions;
  metrics::Gauge* bytes;
};

const CacheMetrics& GetCacheMetrics() {
  static const CacheMetrics m = [] {
    auto& reg = metrics::Registry();
    CacheMetrics cm;
    cm.hits = reg.GetCounter("reach.cache.hits_total");
    cm.misses = reg.GetCounter("reach.cache.misses_total");
    cm.evictions = reg.GetCounter("reach.cache.evictions_total");
    cm.bytes = reg.GetGauge("reach.cache.bytes");
    return cm;
  }();
  return m;
}

uint32_t RoundUpPowerOfTwo(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// Hash-map node overhead per entry: next pointer plus the cached hash
// (libstdc++ __detail::_Hash_node layout).
constexpr uint64_t kMapNodeOverhead = 2 * sizeof(void*);

// A full entry owns its key, a ReachQueryResult, and the followee heap
// block behind the result's vector.
uint64_t FullEntryBytes(const ReachQueryResult& r) {
  return kMapNodeOverhead + sizeof(uint64_t) + sizeof(ReachQueryResult) +
         r.followees.size() * sizeof(NodeId);
}

// A count entry is just key + packed (distance, count) — no heap block.
constexpr uint64_t kCountEntryBytes =
    kMapNodeOverhead + 2 * sizeof(uint64_t);

uint64_t PackCount(const ReachCountResult& r) {
  return (static_cast<uint64_t>(r.distance) << 32) | r.followee_count;
}

ReachCountResult UnpackCount(uint64_t packed) {
  ReachCountResult r;
  r.distance = static_cast<uint32_t>(packed >> 32);
  r.followee_count = static_cast<uint32_t>(packed & 0xffffffffu);
  return r;
}

}  // namespace

CachedReachability::CachedReachability(const WeightedReachability* base,
                                       const graph::DirectedGraph* g,
                                       Options options)
    : base_(base),
      g_(g),
      max_entries_per_shard_(options.max_entries_per_shard) {
  MEL_CHECK(options.num_shards > 0);
  uint32_t num_shards = RoundUpPowerOfTwo(options.num_shards);
  shard_mask_ = num_shards - 1;
  shards_ = std::make_unique<Shard[]>(num_shards);
  name_ = std::string("cached+") + base->Name();
}

CachedReachability::~CachedReachability() {
  // Return the live payload to the gauge so it tracks only caches that
  // still exist.
  const CacheMetrics& cm = GetCacheMetrics();
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    cm.bytes->Add(-static_cast<int64_t>(shards_[s].payload_bytes));
  }
}

ReachQueryResult CachedReachability::Query(NodeId u, NodeId v) const {
  const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
  Shard& shard = ShardFor(key);
  const CacheMetrics& cm = GetCacheMetrics();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      cm.hits->Increment();
      return it->second;
    }
  }
  // Miss path runs the backend outside the shard lock, so a slow BFS
  // never blocks hits on the same shard. Racing misses on the same pair
  // both compute; the first insert wins with an identical value.
  cm.misses->Increment();
  ReachQueryResult result = base_->Query(u, v);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (max_entries_per_shard_ != 0 &&
        shard.entries.size() >= max_entries_per_shard_ &&
        shard.entries.find(key) == shard.entries.end()) {
      cm.evictions->Increment(shard.entries.size());
      uint64_t freed = 0;
      for (const auto& [k, r] : shard.entries) freed += FullEntryBytes(r);
      shard.payload_bytes -= freed;
      cm.bytes->Add(-static_cast<int64_t>(freed));
      shard.entries.clear();
    }
    auto [it, inserted] = shard.entries.try_emplace(key, result);
    if (inserted) {
      uint64_t added = FullEntryBytes(it->second);
      shard.payload_bytes += added;
      cm.bytes->Add(static_cast<int64_t>(added));
    }
  }
  return result;
}

ReachCountResult CachedReachability::CountQuery(NodeId u, NodeId v) const {
  const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
  Shard& shard = ShardFor(key);
  const CacheMetrics& cm = GetCacheMetrics();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.count_entries.find(key);
    if (it != shard.count_entries.end()) {
      cm.hits->Increment();
      return UnpackCount(it->second);
    }
    // A materialized result for the pair answers the count too — derive
    // instead of touching the backend.
    auto full = shard.entries.find(key);
    if (full != shard.entries.end()) {
      cm.hits->Increment();
      return ReachCountResult{
          full->second.distance,
          static_cast<uint32_t>(full->second.followees.size())};
    }
  }
  cm.misses->Increment();
  ReachCountResult result = base_->CountQuery(u, v);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (max_entries_per_shard_ != 0 &&
        shard.count_entries.size() >= max_entries_per_shard_ &&
        shard.count_entries.find(key) == shard.count_entries.end()) {
      cm.evictions->Increment(shard.count_entries.size());
      uint64_t freed = shard.count_entries.size() * kCountEntryBytes;
      shard.payload_bytes -= freed;
      cm.bytes->Add(-static_cast<int64_t>(freed));
      shard.count_entries.clear();
    }
    auto [it, inserted] =
        shard.count_entries.try_emplace(key, PackCount(result));
    if (inserted) {
      shard.payload_bytes += kCountEntryBytes;
      cm.bytes->Add(static_cast<int64_t>(kCountEntryBytes));
    }
  }
  return result;
}

double CachedReachability::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double CachedReachability::ScoreOnly(NodeId u, NodeId v) const {
  const ReachCountResult r = CountQuery(u, v);
  return WeightedScoreFromCount(r.distance, r.followee_count,
                                g_->OutDegree(u), u == v);
}

void CachedReachability::Invalidate() {
  const CacheMetrics& cm = GetCacheMetrics();
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    cm.bytes->Add(-static_cast<int64_t>(shards_[s].payload_bytes));
    shards_[s].payload_bytes = 0;
    shards_[s].entries.clear();
    shards_[s].count_entries.clear();
  }
}

void CachedReachability::InvalidateAffected(const MutationContext& ctx) {
  const std::vector<uint32_t>& to_u = *ctx.dist_to_u;
  const std::vector<uint32_t>& from_v = *ctx.dist_from_v;
  const NodeId u = ctx.delta.u;
  // A cached pair (a, b) can only be stale when it can route through the
  // mutated edge — a reaches u AND v reaches b within the hop bound (for
  // erase, d(a, u) and d(v, b) are unchanged by the mutation, so the
  // post-mutation BFS decides old reachability too) — or when a == u,
  // whose followee count (the Eq.-4 denominator) changed.
  auto stale = [&](uint64_t key) {
    const NodeId a = static_cast<NodeId>(key >> 32);
    const NodeId b = static_cast<NodeId>(key & 0xffffffffu);
    if (a == u) return true;
    return to_u[a] != kUnreachableDistance &&
           from_v[b] != kUnreachableDistance;
  };
  const CacheMetrics& cm = GetCacheMetrics();
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    uint64_t freed = 0;
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (stale(it->first)) {
        freed += FullEntryBytes(it->second);
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = shard.count_entries.begin();
         it != shard.count_entries.end();) {
      if (stale(it->first)) {
        freed += kCountEntryBytes;
        it = shard.count_entries.erase(it);
      } else {
        ++it;
      }
    }
    shard.payload_bytes -= freed;
    cm.bytes->Add(-static_cast<int64_t>(freed));
  }
}

MutationResult CachedReachability::OnGraphMutation(
    const MutationContext& ctx) {
  InvalidateAffected(ctx);
  return MutationResult::kPatched;
}

size_t CachedReachability::ApproxEntries() const {
  size_t total = 0;
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].entries.size() + shards_[s].count_entries.size();
  }
  return total;
}

uint64_t CachedReachability::ApproxPayloadBytes() const {
  uint64_t total = 0;
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].payload_bytes;
  }
  return total;
}

uint64_t CachedReachability::IndexSizeBytes() const {
  // Backend plus the cached entries (map nodes, keys, values, followee
  // heap blocks) plus the hash bucket arrays the maps currently hold.
  uint64_t bytes = base_->IndexSizeBytes();
  for (uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    bytes += shards_[s].payload_bytes;
    bytes += shards_[s].entries.bucket_count() * sizeof(void*);
    bytes += shards_[s].count_entries.bucket_count() * sizeof(void*);
  }
  return bytes;
}

}  // namespace mel::reach

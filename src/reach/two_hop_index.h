#ifndef MEL_REACH_TWO_HOP_INDEX_H_
#define MEL_REACH_TWO_HOP_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mel::reach {

/// \brief Extended 2-hop cover for weighted reachability (Sec. 4.1.1,
/// Algorithm 2).
///
/// A pruned-landmark-labeling index where, unlike classic reachability
/// labels, the out-labels additionally carry the followee sets needed by
/// Eq. 4:
///
///   L_in(v)  = { (s, d_sv) }            — landmarks reaching v
///   L_out(v) = { (t, d_vt, F_vt) }      — landmarks reachable from v,
///                                          with v's followees on the
///                                          shortest paths to t
///
/// A query unions the followee sets of every minimum-distance meeting
/// landmark (Theorem 2), recovering the exact F_uv. Distances are bounded
/// by H hops, matching the transitive-closure backend.
class TwoHopIndex : public WeightedReachability {
 public:
  struct InLabel {
    NodeId node;
    uint32_t dist;
  };
  struct OutLabel {
    NodeId node;
    uint32_t dist;
    std::vector<NodeId> followees;  // sorted after Build
  };

  /// Builds the index; landmarks are processed in descending total-degree
  /// order (Algorithm 2 line 1). The graph must outlive the index.
  ///
  /// The landmark order is inherently sequential (each landmark's BFS
  /// prunes against the labels of all earlier ones), but within one
  /// landmark the backward pass (which grows out-labels) and the forward
  /// pass (which grows in-labels) touch disjoint state and run
  /// concurrently on `pool` (nullptr = the shared pool), as does the
  /// final per-node label sort/dedup pass. Output is bit-identical to a
  /// 1-thread build.
  static TwoHopIndex Build(const graph::DirectedGraph* g, uint32_t max_hops,
                           util::ThreadPool* pool = nullptr);

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "2-hop-cover"; }

  /// Total number of in-label plus out-label entries (index-size metric).
  uint64_t TotalLabelEntries() const;

  /// Persists the labels to disk.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save. The graph must be the
  /// same one the index was built from (node count is validated).
  static Result<TwoHopIndex> Load(const std::string& path,
                                  const graph::DirectedGraph* g);

  const std::vector<InLabel>& in_labels(NodeId v) const {
    return in_labels_[v];
  }
  const std::vector<OutLabel>& out_labels(NodeId v) const {
    return out_labels_[v];
  }

 private:
  /// Construction-time per-pass scratch, keyed by node id. The backward
  /// and forward passes of one landmark run concurrently, so each gets
  /// its own instance.
  struct LandmarkScratch {
    std::vector<uint32_t> hub_dist;  // distance to/from current landmark
    std::vector<uint8_t> in_queue;

    explicit LandmarkScratch(uint32_t num_nodes)
        : hub_dist(num_nodes, kUnreachableDistance),
          in_queue(num_nodes, 0) {}
  };

  explicit TwoHopIndex(const graph::DirectedGraph* g, uint32_t max_hops);

  void ProcessLandmarkBackward(NodeId landmark, LandmarkScratch& scratch);
  void ProcessLandmarkForward(NodeId landmark, LandmarkScratch& scratch);

  const graph::DirectedGraph* g_;
  uint32_t max_hops_;
  std::vector<std::vector<InLabel>> in_labels_;
  std::vector<std::vector<OutLabel>> out_labels_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_TWO_HOP_INDEX_H_

#ifndef MEL_REACH_TWO_HOP_INDEX_H_
#define MEL_REACH_TWO_HOP_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"
#include "util/arena_ref.h"
#include "util/mmap_file.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mel::reach {

/// \brief Extended 2-hop cover for weighted reachability (Sec. 4.1.1,
/// Algorithm 2).
///
/// A pruned-landmark-labeling index where, unlike classic reachability
/// labels, the out-labels additionally carry the followee sets needed by
/// Eq. 4:
///
///   L_in(v)  = { (s, d_sv) }            — landmarks reaching v
///   L_out(v) = { (t, d_vt, F_vt) }      — landmarks reachable from v,
///                                          with v's followees on the
///                                          shortest paths to t
///
/// A query unions the followee sets of every minimum-distance meeting
/// landmark (Theorem 2), recovering the exact F_uv. Distances are bounded
/// by H hops, matching the transitive-closure backend.
///
/// Storage is arena-flattened: labels live in three contiguous arrays
/// (in-entries, out-entries, followee node ids) addressed by per-node
/// prefix offsets — no per-label heap vectors. An out-label is the span
/// record (node, dist) in `out_entries_` plus the half-open followee
/// range [followee_offsets_[i], followee_offsets_[i+1]) into the id
/// arena. Queries intersect spans in place; the count-only path
/// (CountQuery/ScoreOnly) never materializes F_uv at all.
class TwoHopIndex : public WeightedReachability {
 public:
  struct InLabel {
    NodeId node;
    uint32_t dist;
  };
  /// Arena span record of one out-label; the followee ids of entry i
  /// (global index) occupy followee_arena_[followee_offsets_[i] ..
  /// followee_offsets_[i + 1]).
  struct OutSpan {
    NodeId node;
    uint32_t dist;
  };

  /// Builds the index; landmarks are processed in descending total-degree
  /// order (Algorithm 2 line 1). The graph must outlive the index.
  ///
  /// The landmark order is inherently sequential (each landmark's BFS
  /// prunes against the labels of all earlier ones), but within one
  /// landmark the backward pass (which grows out-labels) and the forward
  /// pass (which grows in-labels) touch disjoint state and run
  /// concurrently on `pool` (nullptr = the shared pool), as does the
  /// final per-node label sort/dedup pass. Construction uses per-node
  /// scratch vectors, then flattens them onto the arenas in node order —
  /// output is bit-identical to a 1-thread build.
  static TwoHopIndex Build(const graph::DirectedGraph* g, uint32_t max_hops,
                           util::ThreadPool* pool = nullptr);

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "2-hop-cover"; }

  /// \brief Mutate-or-invalidate contract.
  ///
  /// Insertion of (u, v) patches the labels in place: existing labels
  /// whose distance can route through the new edge are fixed with the
  /// closed form d' = min(d, d(s,u) + 1 + d(v,h)) and their followee
  /// sets recomputed, then hub u (and hub v for the (u, b) pairs, whose
  /// degenerate source-hub carries no followee span) is injected on the
  /// affected region so every pair routing through the edge keeps a
  /// minimum-distance meeting hub. The patched index can carry MORE
  /// labels than a fresh build — equality with a rebuild holds on query
  /// results, not on label structure. Erasure rebuilds: a decremental
  /// cover update is unsound because the pair's new shortest path was
  /// non-shortest before and is in no label. A mapped index becomes
  /// heap-owned when patched.
  MutationResult OnGraphMutation(const MutationContext& ctx) override;

  /// Total number of in-label plus out-label entries (index-size metric).
  uint64_t TotalLabelEntries() const;

  uint64_t NumInEntries() const { return in_entries_.size(); }
  uint64_t NumOutEntries() const { return out_entries_.size(); }
  uint64_t NumFolloweeIds() const { return followee_arena_.size(); }

  /// What the same labels cost in the pre-arena layout (one heap vector
  /// per out-label, one vector-of-vectors per side): per-node vector
  /// headers, per-label inline vector headers, and the followee heap
  /// blocks. Reported by bench_reachability_index as the layout A/B
  /// baseline.
  uint64_t LegacyIndexSizeBytes() const;

  /// Persists the labels as a MEL3 container: fixed 64-byte header +
  /// block table, then the six arenas as sector-aligned (4096 B)
  /// checksummed blocks. Deterministic — save/load/save is
  /// byte-identical.
  Status Save(const std::string& path) const;

  /// Copying load. Accepts both MEL3 containers (written by Save) and
  /// legacy length-prefixed "MEL2" files; either way the arenas land in
  /// owned heap storage and are fully validated (offsets, node ids, and
  /// — for MEL3 — block checksums). The graph must be the same one the
  /// index was built from (node count is validated).
  static Result<TwoHopIndex> Load(const std::string& path,
                                  const graph::DirectedGraph* g);

  /// Zero-deserialization load: maps the MEL3 file read-only and binds
  /// the arena spans straight into the mapping — no copies, no arena
  /// allocation. Validates the header, block table, and offset arrays;
  /// block payloads are trusted unless `opts.verify_checksums` is set
  /// (which additionally checksums every block and range-checks every
  /// node id, touching all pages like the copying load would).
  /// Queries are bit-identical to the heap-built index; the mapping is
  /// released when the last index sharing it is destroyed.
  static Result<TwoHopIndex> LoadMapped(
      const std::string& path, const graph::DirectedGraph* g,
      const util::MmapLoadOptions& opts = {});

  /// True when the arenas view a file mapping instead of owned heap
  /// storage.
  bool IsMapped() const { return mapping_ != nullptr; }
  /// Size of the backing mapping (0 for heap-resident indexes).
  uint64_t MappedBytes() const {
    return mapping_ ? mapping_->size() : 0;
  }

  std::span<const InLabel> in_labels(NodeId v) const {
    return in_entries_.view().subspan(
        in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
  }
  std::span<const OutSpan> out_labels(NodeId v) const {
    return out_entries_.view().subspan(
        out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]);
  }
  /// Global entry index of v's first out-label; add the position within
  /// out_labels(v) to address its followee span below.
  uint64_t out_offset(NodeId v) const { return out_offsets_[v]; }
  /// Followee ids of the out-label with GLOBAL entry index i (i.e.
  /// out_offset(v) + position within out_labels(v)).
  std::span<const NodeId> followees(uint64_t out_entry_index) const {
    return followee_arena_.view().subspan(
        followee_offsets_[out_entry_index],
        followee_offsets_[out_entry_index + 1] -
            followee_offsets_[out_entry_index]);
  }

 private:
  /// Construction-time out-label before flattening: followees still in a
  /// per-label vector (append-heavy BFS phase), converted to arena spans
  /// by FinalizeArenas.
  struct BuildOutLabel {
    NodeId node;
    uint32_t dist;
    std::vector<NodeId> followees;  // sorted after Build's sort pass
  };

  /// Construction-time per-pass scratch, keyed by node id. The backward
  /// and forward passes of one landmark run concurrently, so each gets
  /// its own instance.
  struct LandmarkScratch {
    std::vector<uint32_t> hub_dist;  // distance to/from current landmark
    std::vector<uint8_t> in_queue;

    explicit LandmarkScratch(uint32_t num_nodes)
        : hub_dist(num_nodes, kUnreachableDistance),
          in_queue(num_nodes, 0) {}
  };

  explicit TwoHopIndex(const graph::DirectedGraph* g, uint32_t max_hops);

  void ProcessLandmarkBackward(NodeId landmark, LandmarkScratch& scratch);
  void ProcessLandmarkForward(NodeId landmark, LandmarkScratch& scratch);

  /// Insert-patch body of OnGraphMutation: the graph already contains
  /// the edge, the arenas still predate it (they serve as the
  /// old-distance oracle until the patched labels are re-finalized).
  void PatchInsertedEdge(const MutationContext& ctx);

  /// Flattens the per-node build vectors onto the arenas (node order,
  /// deterministic) and releases the construction scratch.
  void FinalizeArenas();

  /// Publishes reach.arena.* gauges for this index's arenas.
  void PublishArenaMetrics() const;

  /// Pass 1 + hub collection: returns d_uv (kUnreachableDistance when
  /// none) and fills `spans` with the GLOBAL out-entry indices of every
  /// hub achieving it, in ascending entry order.
  uint32_t CollectMinDistanceSpans(NodeId u, NodeId v,
                                   std::vector<uint64_t>& spans) const;

  /// Structural validation shared by every load path: offsets arrays
  /// must be monotone prefix sums covering their arenas. Content (node
  /// id) validation is separate — see ValidateNodeIds.
  Status ValidateOffsets() const;
  Status ValidateNodeIds() const;

  /// Copies any view-state arenas into owned heap storage and drops the
  /// mapping (the final step of the MEL3 copying load).
  void MaterializeOwned();

  const graph::DirectedGraph* g_;
  uint32_t max_hops_;

  // Construction scratch; empty after FinalizeArenas / in loaded indexes.
  std::vector<std::vector<InLabel>> build_in_labels_;
  std::vector<std::vector<BuildOutLabel>> build_out_labels_;

  // Arena storage (see class comment). Offsets arrays have n + 1 /
  // num-out-entries + 1 elements; entry arrays are contiguous. Each
  // arena either owns heap storage (Build / copying Load) or views the
  // file mapping below (LoadMapped).
  util::ArenaRef<uint64_t> in_offsets_;
  util::ArenaRef<InLabel> in_entries_;
  util::ArenaRef<uint64_t> out_offsets_;
  util::ArenaRef<OutSpan> out_entries_;
  util::ArenaRef<uint64_t> followee_offsets_;
  util::ArenaRef<NodeId> followee_arena_;

  // Keeps the MEL3 mapping alive while any arena views it; shared so
  // copies of a mapped index stay valid and re-mapping the same file
  // twice yields independent lifetimes.
  std::shared_ptr<const util::MmapFile> mapping_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_TWO_HOP_INDEX_H_

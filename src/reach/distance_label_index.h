#ifndef MEL_REACH_DISTANCE_LABEL_INDEX_H_
#define MEL_REACH_DISTANCE_LABEL_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"

namespace mel::reach {

/// \brief Ablation of the paper's extended 2-hop cover: classic pruned
/// landmark labeling that stores ONLY distances, reconstructing the
/// followee set at query time through Theorem 1:
///
///   F_uv = { t in F_u : d(t, v) = d(u, v) - 1 }
///
/// Each weighted query therefore costs 1 + outdeg(u) distance queries,
/// trading query time for an index that is smaller and much faster to
/// build than the followee-carrying labels of Algorithm 2. The
/// bench_followee_storage benchmark quantifies the trade-off.
class DistanceLabelIndex : public WeightedReachability {
 public:
  struct Label {
    NodeId node;
    uint32_t dist;
  };

  /// Builds the index; landmarks in descending total-degree order.
  static DistanceLabelIndex Build(const graph::DirectedGraph* g,
                                  uint32_t max_hops);

  /// Shortest-path distance (kUnreachableDistance beyond H hops).
  uint32_t Distance(NodeId u, NodeId v) const;

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "2-hop-dist-only"; }

  uint64_t TotalLabelEntries() const;

 private:
  DistanceLabelIndex(const graph::DirectedGraph* g, uint32_t max_hops);

  void ProcessLandmark(NodeId landmark, bool forward);

  const graph::DirectedGraph* g_;
  uint32_t max_hops_;
  std::vector<std::vector<Label>> in_labels_;   // sorted by node
  std::vector<std::vector<Label>> out_labels_;  // sorted by node

  // Construction scratch.
  std::vector<uint32_t> hub_dist_;
  std::vector<uint8_t> in_queue_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_DISTANCE_LABEL_INDEX_H_

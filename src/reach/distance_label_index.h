#ifndef MEL_REACH_DISTANCE_LABEL_INDEX_H_
#define MEL_REACH_DISTANCE_LABEL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"
#include "util/arena_ref.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace mel::reach {

/// \brief Ablation of the paper's extended 2-hop cover: classic pruned
/// landmark labeling that stores ONLY distances, reconstructing the
/// followee set at query time through Theorem 1:
///
///   F_uv = { t in F_u : d(t, v) = d(u, v) - 1 }
///
/// Each weighted query therefore costs 1 + outdeg(u) distance queries,
/// trading query time for an index that is smaller and much faster to
/// build than the followee-carrying labels of Algorithm 2. The
/// bench_followee_storage benchmark quantifies the trade-off.
///
/// Labels are arena-flattened like TwoHopIndex: all (node, dist) entries
/// of one side live in a single contiguous array addressed by per-node
/// prefix offsets, so a query walks two cache-friendly spans and Save /
/// Load stream each arena as one block.
class DistanceLabelIndex : public WeightedReachability {
 public:
  struct Label {
    NodeId node;
    uint32_t dist;
  };

  /// Builds the index; landmarks in descending total-degree order.
  static DistanceLabelIndex Build(const graph::DirectedGraph* g,
                                  uint32_t max_hops);

  /// Shortest-path distance (kUnreachableDistance beyond H hops).
  uint32_t Distance(NodeId u, NodeId v) const;

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "2-hop-dist-only"; }

  /// \brief Mutate-or-invalidate contract: insertions patch the distance
  /// labels in place (closed form + hub-u injection over the affected
  /// region; followee sets are query-time reconstructions here, so exact
  /// distances are all that is needed), erasures rebuild — the
  /// decremental case is unsound for a pruned cover. A mapped index
  /// becomes heap-owned when patched.
  MutationResult OnGraphMutation(const MutationContext& ctx) override;

  uint64_t TotalLabelEntries() const;

  /// Persists the arenas as a MEL3 container (sector-aligned checksummed
  /// blocks, wrapping inner format "MELD").
  Status Save(const std::string& path) const;

  /// Copying load. Accepts both MEL3 containers (written by Save) and
  /// legacy length-prefixed "MELD" files; either way the arenas land in
  /// owned heap storage and are fully validated. The graph must be the
  /// same one the index was built from (node count is validated).
  static Result<DistanceLabelIndex> Load(const std::string& path,
                                         const graph::DirectedGraph* g);

  /// Zero-deserialization load: binds the arena spans straight into a
  /// read-only mapping of the MEL3 file. See TwoHopIndex::LoadMapped for
  /// the validation contract.
  static Result<DistanceLabelIndex> LoadMapped(
      const std::string& path, const graph::DirectedGraph* g,
      const util::MmapLoadOptions& opts = {});

  /// True when the arenas view a file mapping instead of owned heap
  /// storage.
  bool IsMapped() const { return mapping_ != nullptr; }
  /// Size of the backing mapping (0 for heap-resident indexes).
  uint64_t MappedBytes() const {
    return mapping_ ? mapping_->size() : 0;
  }

  std::span<const Label> in_labels(NodeId v) const {
    return in_entries_.view().subspan(
        in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
  }
  std::span<const Label> out_labels(NodeId v) const {
    return out_entries_.view().subspan(
        out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]);
  }

 private:
  DistanceLabelIndex(const graph::DirectedGraph* g, uint32_t max_hops);

  void ProcessLandmark(NodeId landmark, bool forward);

  /// Insert-patch body of OnGraphMutation (graph already mutated, arenas
  /// still pre-insert and serving as the old-distance oracle).
  void PatchInsertedEdge(const MutationContext& ctx);

  /// Flattens the per-node build vectors onto the arenas and releases
  /// them (plus the BFS scratch).
  void FinalizeArenas();

  /// Structural / content validation shared by every load path; see
  /// TwoHopIndex for the split.
  Status ValidateOffsets() const;
  Status ValidateNodeIds() const;

  /// Copies any view-state arenas into owned heap storage and drops the
  /// mapping (the final step of the MEL3 copying load).
  void MaterializeOwned();

  const graph::DirectedGraph* g_;
  uint32_t max_hops_;

  // Arena storage: entries sorted by hub node within each node's span.
  // Each arena either owns heap storage (Build / copying Load) or views
  // the file mapping below (LoadMapped).
  util::ArenaRef<uint64_t> in_offsets_;   // n + 1
  util::ArenaRef<Label> in_entries_;
  util::ArenaRef<uint64_t> out_offsets_;  // n + 1
  util::ArenaRef<Label> out_entries_;

  // Keeps the MEL3 mapping alive while any arena views it.
  std::shared_ptr<const util::MmapFile> mapping_;

  // Construction scratch (empty after Build / in loaded indexes).
  std::vector<std::vector<Label>> build_in_labels_;
  std::vector<std::vector<Label>> build_out_labels_;
  std::vector<uint32_t> hub_dist_;
  std::vector<uint8_t> in_queue_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_DISTANCE_LABEL_INDEX_H_

#ifndef MEL_REACH_REACH_METRICS_H_
#define MEL_REACH_REACH_METRICS_H_

#include "util/metrics.h"

namespace mel::reach {

/// Counters shared by every backend's count-only fast path
/// (CountQuery/ScoreOnly). Cached once per process like the per-backend
/// metric bundles; see docs/METRICS.md.
struct ScoreOnlyMetrics {
  metrics::Counter* lookups;
  metrics::Counter* unreachable;
};

inline const ScoreOnlyMetrics& GetScoreOnlyMetrics() {
  static const ScoreOnlyMetrics m = [] {
    auto& reg = metrics::Registry();
    ScoreOnlyMetrics sm;
    sm.lookups = reg.GetCounter("reach.score_only.lookups_total");
    sm.unreachable = reg.GetCounter("reach.score_only.unreachable_total");
    return sm;
  }();
  return m;
}

/// Gauges describing the flattened label arenas of the 2-hop cover and
/// the distance-label ablation. Set whenever an arena is (re)built or
/// loaded; they describe the most recent index finalized in-process.
struct ArenaMetrics {
  metrics::Gauge* in_entries;
  metrics::Gauge* out_entries;
  metrics::Gauge* followee_ids;
  metrics::Gauge* bytes;
};

inline const ArenaMetrics& GetArenaMetrics() {
  static const ArenaMetrics m = [] {
    auto& reg = metrics::Registry();
    ArenaMetrics am;
    am.in_entries = reg.GetGauge("reach.arena.in_entries");
    am.out_entries = reg.GetGauge("reach.arena.out_entries");
    am.followee_ids = reg.GetGauge("reach.arena.followee_ids");
    am.bytes = reg.GetGauge("reach.arena.bytes");
    return am;
  }();
  return m;
}

}  // namespace mel::reach

#endif  // MEL_REACH_REACH_METRICS_H_

#ifndef MEL_REACH_REACH_METRICS_H_
#define MEL_REACH_REACH_METRICS_H_

#include "util/metrics.h"
#include "util/mmap_file.h"

namespace mel::reach {

/// Counters shared by every backend's count-only fast path
/// (CountQuery/ScoreOnly). Cached once per process like the per-backend
/// metric bundles; see docs/METRICS.md.
struct ScoreOnlyMetrics {
  metrics::Counter* lookups;
  metrics::Counter* unreachable;
};

inline const ScoreOnlyMetrics& GetScoreOnlyMetrics() {
  static const ScoreOnlyMetrics m = [] {
    auto& reg = metrics::Registry();
    ScoreOnlyMetrics sm;
    sm.lookups = reg.GetCounter("reach.score_only.lookups_total");
    sm.unreachable = reg.GetCounter("reach.score_only.unreachable_total");
    return sm;
  }();
  return m;
}

/// Gauges describing the flattened label arenas of the 2-hop cover and
/// the distance-label ablation. Set whenever an arena is (re)built or
/// loaded; they describe the most recent index finalized in-process.
struct ArenaMetrics {
  metrics::Gauge* in_entries;
  metrics::Gauge* out_entries;
  metrics::Gauge* followee_ids;
  metrics::Gauge* bytes;
};

inline const ArenaMetrics& GetArenaMetrics() {
  static const ArenaMetrics m = [] {
    auto& reg = metrics::Registry();
    ArenaMetrics am;
    am.in_entries = reg.GetGauge("reach.arena.in_entries");
    am.out_entries = reg.GetGauge("reach.arena.out_entries");
    am.followee_ids = reg.GetGauge("reach.arena.followee_ids");
    am.bytes = reg.GetGauge("reach.arena.bytes");
    return am;
  }();
  return m;
}

/// Gauges describing how the most recent arena index got its bytes:
/// heap-built, copy-deserialized from a file, or zero-copy mapped — and,
/// for mappings, how big the mapping is and which madvise mode drives
/// its page faults. See docs/METRICS.md.
struct MmapMetrics {
  metrics::Gauge* mapped_bytes;
  metrics::Gauge* advice;
  metrics::Gauge* load_mode;
};

/// Values of `reach.mmap.load_mode`.
inline constexpr int64_t kLoadModeBuilt = 0;
inline constexpr int64_t kLoadModeCopied = 1;
inline constexpr int64_t kLoadModeMapped = 2;

inline const MmapMetrics& GetMmapMetrics() {
  static const MmapMetrics m = [] {
    auto& reg = metrics::Registry();
    MmapMetrics mm;
    mm.mapped_bytes = reg.GetGauge("reach.mmap.mapped_bytes");
    mm.advice = reg.GetGauge("reach.mmap.advice");
    mm.load_mode = reg.GetGauge("reach.mmap.load_mode");
    return mm;
  }();
  return m;
}

inline void PublishMmapLoadMetrics(int64_t load_mode, uint64_t mapped_bytes,
                                   util::MmapFile::Advice advice) {
  const MmapMetrics& mm = GetMmapMetrics();
  mm.load_mode->Set(load_mode);
  mm.mapped_bytes->Set(static_cast<int64_t>(mapped_bytes));
  mm.advice->Set(static_cast<int64_t>(advice));
}

}  // namespace mel::reach

#endif  // MEL_REACH_REACH_METRICS_H_

#include "reach/transitive_closure.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_set>

#include "graph/bfs.h"
#include "reach/reach_metrics.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace mel::reach {

namespace {

struct TcMetrics {
  metrics::Counter* lookups;
  metrics::Counter* unreachable;
  metrics::Counter* edge_inserts;
  metrics::Counter* edge_erases;
  metrics::Histogram* repair_pairs;
  metrics::Histogram* build_ns;
};

const TcMetrics& GetTcMetrics() {
  static const TcMetrics m = [] {
    auto& reg = metrics::Registry();
    TcMetrics tm;
    tm.lookups = reg.GetCounter("reach.tc.lookups_total");
    tm.unreachable = reg.GetCounter("reach.tc.unreachable_total");
    tm.edge_inserts = reg.GetCounter("reach.tc.edge_inserts_total");
    tm.edge_erases = reg.GetCounter("reach.tc.edge_erases_total");
    tm.repair_pairs = reg.GetHistogram("reach.tc.repair_pairs");
    tm.build_ns = reg.GetHistogram("reach.tc.build_ns");
    return tm;
  }();
  return m;
}

// Row grain for the parallel constructions: rows are O(|V|)-ish each, so
// a handful per chunk amortizes the scheduling atomics without starving
// the load balancer on skewed degree distributions.
constexpr size_t kRowGrain = 8;

}  // namespace

TransitiveClosureIndex::TransitiveClosureIndex(const graph::DirectedGraph* g,
                                               uint32_t max_hops)
    : g_(g), n_(g->num_nodes()), max_hops_(max_hops) {
  MEL_CHECK_MSG(max_hops_ < 255, "distances are stored in one byte");
  score_.assign(static_cast<size_t>(n_) * n_, 0.0f);
  dist_.assign(static_cast<size_t>(n_) * n_, 0);
  overlay_out_.resize(n_);
  overlay_in_.resize(n_);
}

template <typename Fn>
void TransitiveClosureIndex::ForEachFollowee(NodeId a, Fn fn) const {
  for (NodeId t : g_->OutNeighbors(a)) fn(t);
  for (NodeId t : overlay_out_[a]) fn(t);
}

template <typename Fn>
void TransitiveClosureIndex::ForEachFollower(NodeId t, Fn fn) const {
  for (NodeId a : g_->InNeighbors(t)) fn(a);
  for (NodeId a : overlay_in_[t]) fn(a);
}

uint32_t TransitiveClosureIndex::CurrentOutDegree(NodeId u) const {
  return g_->OutDegree(u) + static_cast<uint32_t>(overlay_out_[u].size());
}

TransitiveClosureIndex TransitiveClosureIndex::Build(
    const graph::DirectedGraph* g, uint32_t max_hops, Construction mode,
    util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::ThreadPool::Shared();
  TransitiveClosureIndex index(g, max_hops);
  metrics::ScopedStageTimer build_timer(GetTcMetrics().build_ns);
  if (mode == Construction::kNaive) {
    index.BuildNaive(pool);
  } else {
    index.BuildIncremental(pool);
  }
  return index;
}

void TransitiveClosureIndex::BuildNaive(util::ThreadPool* pool) {
  // The paper's strawman: an independent traversal per node pair. One
  // bounded backward BFS per target v recovers d_uv and the followee
  // distances needed by Eq. 4 for every source u at once, and fills only
  // column v — so targets parallelize with no shared writes.
  pool->ParallelFor(0, n_, kRowGrain, [&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    auto& scratch = graph::BfsScratch::ThreadLocal(n_);
    scratch.RunBackward(*g_, v, max_hops_);
    for (NodeId u = 0; u < n_; ++u) {
      if (u == v) continue;
      uint32_t duv = scratch.Distance(u);
      if (duv == graph::kUnreachable) continue;
      dist_[Cell(u, v)] = static_cast<uint8_t>(duv);
      if (duv == 1) {
        score_[Cell(u, v)] = 1.0f;  // Algorithm 1 line 3 convention
        continue;
      }
      uint32_t on_shortest = 0;
      for (NodeId t : g_->OutNeighbors(u)) {
        if (scratch.Distance(t) == duv - 1) ++on_shortest;
      }
      score_[Cell(u, v)] = static_cast<float>(
          (1.0 / duv) * on_shortest / g_->OutDegree(u));
    }
  });
}

namespace {

// Per-thread scratch of the incremental build: the epoch-stamped
// accumulator counts[v] = n_v, the number of the current row's followees
// that reach v in < len hops.
struct IncrementalScratch {
  std::vector<uint32_t> counts;
  std::vector<uint64_t> epoch;
  std::vector<graph::NodeId> touched;
  uint64_t current_epoch = 0;

  static IncrementalScratch& ThreadLocal(uint32_t n) {
    thread_local std::unique_ptr<IncrementalScratch> scratch;
    if (scratch == nullptr || scratch->counts.size() != n) {
      scratch = std::make_unique<IncrementalScratch>();
      scratch->counts.assign(n, 0);
      scratch->epoch.assign(n, 0);
      scratch->current_epoch = 0;
    }
    return *scratch;
  }
};

}  // namespace

void TransitiveClosureIndex::BuildIncremental(util::ThreadPool* pool) {
  // Algorithm 1. Level len extends knowledge from levels < len: a followee
  // t of u lies on a len-hop shortest path to v iff d_tv = len - 1
  // (Theorem 1), which after len - 1 iterations is equivalent to
  // dist_[t][v] being set in an earlier level while dist_[u][v] is not.
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v : g_->OutNeighbors(u)) {
      score_[Cell(u, v)] = 1.0f;
      dist_[Cell(u, v)] = 1;
    }
  }

  // Rows are independent within a level once reads go against a snapshot
  // of the previous levels: row u only writes cells (u, *), and the
  // predicate 0 < d < len only accepts cells finalized in earlier levels.
  // (The serial build reads the live matrix, but its same-level writes
  // all carry value len and are rejected by the predicate, so reading the
  // double-buffered snapshot yields bit-identical output.)
  std::vector<uint8_t> prev_dist;
  for (uint32_t len = 2; len <= max_hops_; ++len) {
    prev_dist = dist_;
    std::atomic<bool> any_update{false};
    pool->ParallelFor(0, n_, kRowGrain, [&](size_t ui) {
      const NodeId u = static_cast<NodeId>(ui);
      auto followees = g_->OutNeighbors(u);
      if (followees.empty()) return;
      auto& scratch = IncrementalScratch::ThreadLocal(n_);
      ++scratch.current_epoch;
      scratch.touched.clear();
      for (NodeId t : followees) {
        const uint8_t* trow = prev_dist.data() + Cell(t, 0);
        for (NodeId v = 0; v < n_; ++v) {
          // Set in an earlier level <=> 0 < dist < len.
          if (trow[v] == 0 || trow[v] >= len) continue;
          if (scratch.epoch[v] != scratch.current_epoch) {
            scratch.epoch[v] = scratch.current_epoch;
            scratch.counts[v] = 0;
            scratch.touched.push_back(v);
          }
          ++scratch.counts[v];
        }
      }
      bool row_update = false;
      const double inv = 1.0 / (static_cast<double>(len) * followees.size());
      for (NodeId v : scratch.touched) {
        size_t cell = Cell(u, v);
        if (dist_[cell] != 0 || v == u) continue;  // shorter path exists
        dist_[cell] = static_cast<uint8_t>(len);
        score_[cell] = static_cast<float>(inv * scratch.counts[v]);
        row_update = true;
      }
      if (row_update) any_update.store(true, std::memory_order_relaxed);
    });
    if (!any_update.load(std::memory_order_relaxed)) break;  // diameter < H
  }
}

double TransitiveClosureIndex::Score(NodeId u, NodeId v) const {
  const TcMetrics& tm = GetTcMetrics();
  tm.lookups->Increment();
  if (u == v) return 1.0;
  float score = score_[Cell(u, v)];
  if (score == 0.0f) tm.unreachable->Increment();
  return score;
}

uint32_t TransitiveClosureIndex::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  uint8_t d = dist_[Cell(u, v)];
  return d == 0 ? kUnreachableDistance : d;
}

ReachQueryResult TransitiveClosureIndex::Query(NodeId u, NodeId v) const {
  const TcMetrics& tm = GetTcMetrics();
  tm.lookups->Increment();
  ReachQueryResult result;
  uint32_t duv = Distance(u, v);
  if (duv == kUnreachableDistance || u == v) {
    if (duv == kUnreachableDistance) tm.unreachable->Increment();
    result.distance = duv;
    return result;
  }
  result.distance = duv;
  // The matrix keeps distances for every pair, so F_uv can be
  // reconstructed on demand via Theorem 1 without storing it.
  ForEachFollowee(u, [&](NodeId t) {
    if (t == v || Distance(t, v) == duv - 1) result.followees.push_back(t);
  });
  std::sort(result.followees.begin(), result.followees.end());
  return result;
}

ReachCountResult TransitiveClosureIndex::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  ReachCountResult result;
  uint32_t duv = Distance(u, v);
  result.distance = duv;
  if (duv == kUnreachableDistance) {
    sm.unreachable->Increment();
    return result;
  }
  if (u == v) return result;
  uint32_t count = 0;
  ForEachFollowee(u, [&](NodeId t) {
    if (t == v || Distance(t, v) == duv - 1) ++count;
  });
  result.followee_count = count;
  return result;
}

double TransitiveClosureIndex::ScoreOnly(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  if (u == v) return 1.0;
  float score = score_[Cell(u, v)];
  if (score == 0.0f) sm.unreachable->Increment();
  return score;
}

void TransitiveClosureIndex::RecomputeScore(NodeId a, NodeId b) {
  size_t cell = Cell(a, b);
  uint8_t d = dist_[cell];
  if (d == 0) {
    score_[cell] = 0.0f;
    return;
  }
  if (d == 1) {
    score_[cell] = 1.0f;  // Algorithm 1 line 3 convention
    return;
  }
  uint32_t on_shortest = 0;
  ForEachFollowee(a, [&](NodeId t) {
    if (dist_[Cell(t, b)] == d - 1) ++on_shortest;
  });
  uint32_t out_degree = CurrentOutDegree(a);
  score_[cell] = out_degree == 0
                     ? 0.0f
                     : static_cast<float>((1.0 / d) * on_shortest /
                                          out_degree);
}

bool TransitiveClosureIndex::InsertEdge(NodeId u, NodeId v) {
  MEL_CHECK(u < n_ && v < n_);
  if (u == v) return false;
  if (g_->HasEdge(u, v)) return false;
  if (std::find(overlay_out_[u].begin(), overlay_out_[u].end(), v) !=
      overlay_out_[u].end()) {
    return false;
  }
  overlay_out_[u].push_back(v);
  overlay_in_[v].push_back(u);
  ++overlay_edge_count_;
  PatchInsertedEdge(u, v);
  return true;
}

void TransitiveClosureIndex::PatchInsertedEdge(NodeId u, NodeId v) {
  // Distances shrink only along paths a ~> u -> v ~> b.
  std::vector<std::pair<NodeId, uint32_t>> sources;  // (a, d(a, u))
  std::vector<std::pair<NodeId, uint32_t>> targets;  // (b, d(v, b))
  sources.emplace_back(u, 0);
  targets.emplace_back(v, 0);
  for (NodeId a = 0; a < n_; ++a) {
    if (a != u && dist_[Cell(a, u)] != 0) {
      sources.emplace_back(a, dist_[Cell(a, u)]);
    }
  }
  for (NodeId b = 0; b < n_; ++b) {
    if (b != v && dist_[Cell(v, b)] != 0) {
      targets.emplace_back(b, dist_[Cell(v, b)]);
    }
  }

  std::vector<std::pair<NodeId, NodeId>> changed;
  for (const auto& [a, da] : sources) {
    for (const auto& [b, db] : targets) {
      if (a == b) continue;
      uint32_t cand = da + 1 + db;
      if (cand > max_hops_) continue;
      size_t cell = Cell(a, b);
      if (dist_[cell] == 0 || cand < dist_[cell]) {
        dist_[cell] = static_cast<uint8_t>(cand);
        changed.emplace_back(a, b);
      }
    }
  }

  // Scores are a pure function of the distance matrix and followee sets:
  // repair (1) every changed pair, (2) followers of a changed pair's
  // source (their Theorem-1 followee set may have gained t), and (3) the
  // whole live row of u (its out-degree, Eq. 4's denominator, grew).
  std::unordered_set<uint64_t> repair;
  auto add = [&](NodeId a, NodeId b) {
    repair.insert((static_cast<uint64_t>(a) << 32) | b);
  };
  for (const auto& [t, b] : changed) {
    add(t, b);
    ForEachFollower(t, [&](NodeId a) {
      if (a != b && dist_[Cell(a, b)] != 0) add(a, b);
    });
  }
  for (NodeId b = 0; b < n_; ++b) {
    if (b != u && dist_[Cell(u, b)] != 0) add(u, b);
  }
  for (uint64_t key : repair) {
    RecomputeScore(static_cast<NodeId>(key >> 32),
                   static_cast<NodeId>(key & 0xffffffffu));
  }
  const TcMetrics& tm = GetTcMetrics();
  tm.edge_inserts->Increment();
  if (metrics::Enabled()) tm.repair_pairs->Record(repair.size());
}

void TransitiveClosureIndex::PatchErasedEdge(NodeId u, NodeId v) {
  // d(a, u) and d(v, b) never route through (u, v) — a path to u using
  // it would leave u and have to return, a path from v would have to
  // re-enter v — so the pre-erase matrix still holds them exactly.
  std::vector<std::pair<NodeId, uint32_t>> sources;  // (a, d(a, u))
  std::vector<std::pair<NodeId, uint32_t>> targets;  // (b, d(v, b))
  sources.emplace_back(u, 0);
  targets.emplace_back(v, 0);
  for (NodeId a = 0; a < n_; ++a) {
    if (a != u && dist_[Cell(a, u)] != 0) {
      sources.emplace_back(a, dist_[Cell(a, u)]);
    }
  }
  for (NodeId b = 0; b < n_; ++b) {
    if (b != v && dist_[Cell(v, b)] != 0) {
      targets.emplace_back(b, dist_[Cell(v, b)]);
    }
  }

  // A source row can only grow a distance if some shortest path from it
  // routed through the erased edge: d(a, b) == d(a, u) + 1 + d(v, b) for
  // some b. Unaffected rows keep their entire row as-is.
  std::vector<NodeId> affected;
  for (const auto& [a, da] : sources) {
    for (const auto& [b, db] : targets) {
      if (a == b) continue;
      uint32_t cand = da + 1 + db;
      if (cand > max_hops_) continue;
      if (dist_[Cell(a, b)] == cand) {
        affected.push_back(a);
        break;
      }
    }
  }

  // Deletion has no closed form (the new shortest path can be anywhere),
  // so affected rows are re-derived by one bounded forward BFS each on
  // the post-erase graph.
  std::vector<std::pair<NodeId, NodeId>> changed;
  auto& scratch = graph::BfsScratch::ThreadLocal(n_);
  for (NodeId a : affected) {
    scratch.RunForward(*g_, a, max_hops_);
    for (NodeId b = 0; b < n_; ++b) {
      if (b == a) continue;
      uint32_t nd = scratch.Distance(b);
      uint8_t fresh = nd == graph::kUnreachable ? 0 : static_cast<uint8_t>(nd);
      size_t cell = Cell(a, b);
      if (dist_[cell] != fresh) {
        dist_[cell] = fresh;
        changed.emplace_back(a, b);
      }
    }
  }

  // Same completeness argument as the insert repair: a score can change
  // only through its own distance cell, a followee's distance cell, or
  // the out-degree denominator (only u's shrank).
  std::unordered_set<uint64_t> repair;
  auto add = [&](NodeId a, NodeId b) {
    repair.insert((static_cast<uint64_t>(a) << 32) | b);
  };
  for (const auto& [t, b] : changed) {
    add(t, b);
    ForEachFollower(t, [&](NodeId a) {
      if (a != b && dist_[Cell(a, b)] != 0) add(a, b);
    });
  }
  for (NodeId b = 0; b < n_; ++b) {
    if (b != u && dist_[Cell(u, b)] != 0) add(u, b);
  }
  for (uint64_t key : repair) {
    RecomputeScore(static_cast<NodeId>(key >> 32),
                   static_cast<NodeId>(key & 0xffffffffu));
  }
  const TcMetrics& tm = GetTcMetrics();
  tm.edge_erases->Increment();
  if (metrics::Enabled()) tm.repair_pairs->Record(repair.size());
}

MutationResult TransitiveClosureIndex::OnGraphMutation(
    const MutationContext& ctx) {
  const auto& d = ctx.delta;
  MEL_CHECK(d.u < n_ && d.v < n_);
  MEL_CHECK_MSG(overlay_edge_count_ == 0,
                "graph-mutated-first contract cannot mix with overlay edges");
  if (d.op == graph::EdgeDelta::Op::kInsert) {
    MEL_CHECK(g_->HasEdge(d.u, d.v));
    PatchInsertedEdge(d.u, d.v);
  } else {
    MEL_CHECK(!g_->HasEdge(d.u, d.v));
    PatchErasedEdge(d.u, d.v);
  }
  return MutationResult::kPatched;
}

uint64_t TransitiveClosureIndex::IndexSizeBytes() const {
  return static_cast<uint64_t>(n_) * n_ * (sizeof(float) + sizeof(uint8_t));
}

namespace {
constexpr uint32_t kTcMagic = 0x4d454c54;  // "MELT"
constexpr uint32_t kTcVersion = 1;
}  // namespace

Status TransitiveClosureIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU32(kTcMagic);
  writer.WriteU32(kTcVersion);
  writer.WriteU32(n_);
  writer.WriteU32(max_hops_);
  writer.WriteVector(dist_);
  writer.WriteVector(score_);
  for (NodeId u = 0; u < n_; ++u) writer.WriteVector(overlay_out_[u]);
  return writer.Finish();
}

Result<TransitiveClosureIndex> TransitiveClosureIndex::Load(
    const std::string& path, const graph::DirectedGraph* g) {
  BinaryReader reader(path);
  uint32_t magic = reader.ReadU32();
  uint32_t version = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  uint32_t max_hops = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kTcMagic) {
    return Status::InvalidArgument("not a transitive-closure index file");
  }
  if (version != kTcVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (n != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }
  TransitiveClosureIndex index(g, max_hops);
  index.dist_ = reader.ReadVector<uint8_t>();
  index.score_ = reader.ReadVector<float>();
  const size_t cells = static_cast<size_t>(n) * n;
  if (!reader.status().ok()) return reader.status();
  if (index.dist_.size() != cells || index.score_.size() != cells) {
    return Status::InvalidArgument("corrupt matrix payload");
  }
  for (NodeId u = 0; u < n; ++u) {
    index.overlay_out_[u] = reader.ReadVector<NodeId>();
    for (NodeId v : index.overlay_out_[u]) {
      if (v >= n) return Status::InvalidArgument("corrupt overlay edge");
      index.overlay_in_[v].push_back(u);
      ++index.overlay_edge_count_;
    }
  }
  if (!reader.status().ok()) return reader.status();
  return index;
}

}  // namespace mel::reach

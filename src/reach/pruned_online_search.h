#ifndef MEL_REACH_PRUNED_ONLINE_SEARCH_H_
#define MEL_REACH_PRUNED_ONLINE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "graph/bfs.h"
#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"
#include "util/random.h"

namespace mel::reach {

/// \brief The third category of the paper's related-work taxonomy
/// (Sec. 2): online search with pre-computed pruning, in the style of
/// GRAIL (Yildirim et al., PVLDB 2010).
///
/// Offline, the graph is condensed to its SCC DAG and each component
/// receives k randomized post-order intervals; node u can only reach v if
/// every interval of v's component is contained in the corresponding
/// interval of u's component. Online, a query first consults the
/// intervals — answering most unreachable pairs in O(k) — and falls back
/// to the bounded backward BFS of the naive method otherwise.
///
/// Index size is O(k * |V|): far below both the transitive closure and
/// the 2-hop cover, at the price of BFS-speed positive queries. This is
/// why the paper dismisses the category for its real-time setting; the
/// backend exists to make that comparison measurable.
class PrunedOnlineSearch : public WeightedReachability {
 public:
  /// \param g the graph (must outlive the index)
  /// \param max_hops hop bound H shared with the other backends
  /// \param num_intervals k randomized interval labelings (more = better
  ///        pruning, bigger index)
  /// \param seed randomization seed for the DFS orders
  static PrunedOnlineSearch Build(const graph::DirectedGraph* g,
                                  uint32_t max_hops,
                                  uint32_t num_intervals, uint64_t seed);

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "pruned-online-search"; }

  /// True when the interval labels PROVE v is unreachable from u
  /// (ignoring the hop bound). False means "maybe reachable".
  bool DefinitelyUnreachable(NodeId u, NodeId v) const;

  /// Fraction of random queries answered negatively by intervals alone —
  /// diagnostics for the pruning power.
  uint32_t num_components() const { return num_components_; }

  /// \brief Mutate-or-invalidate contract: both insert and erase rebuild
  /// the SCC condensation and interval labels (they are global graph
  /// properties with no sound local patch), reusing the stored build
  /// seed so the rebuilt index is bit-identical to a fresh Build. The
  /// BFS fallback already reads the live graph.
  MutationResult OnGraphMutation(const MutationContext& ctx) override;

 private:
  PrunedOnlineSearch(const graph::DirectedGraph* g, uint32_t max_hops,
                     uint32_t num_intervals);

  struct Interval {
    uint32_t low;
    uint32_t high;  // post-order rank; contains() is low_a <= low_b &&
                    // high_b <= high_a
  };

  void BuildIntervals(uint64_t seed);

  const graph::DirectedGraph* g_;
  uint32_t max_hops_;
  uint32_t num_intervals_;
  uint64_t seed_ = 0;  // kept for rebuild-on-mutation
  uint32_t num_components_ = 0;
  std::vector<uint32_t> component_;  // node -> SCC id
  // intervals_[k * num_components_ + c] = k-th interval of component c.
  std::vector<Interval> intervals_;
  // Condensed DAG adjacency (component -> out components).
  std::vector<std::vector<uint32_t>> dag_out_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_PRUNED_ONLINE_SEARCH_H_

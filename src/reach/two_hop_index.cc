#include "reach/two_hop_index.h"

#include <algorithm>
#include <bit>
#include <type_traits>
#include <utility>

#include "graph/stats.h"
#include "reach/reach_metrics.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/simd/simd.h"
#include "util/sorted_intersect.h"

namespace mel::reach {

namespace {

constexpr uint32_t kInf = kUnreachableDistance;

bool Contains(const std::vector<NodeId>& vec, NodeId x) {
  return std::find(vec.begin(), vec.end(), x) != vec.end();
}

struct TwoHopMetrics {
  metrics::Counter* lookups;
  metrics::Counter* unreachable;
  metrics::Histogram* labels_scanned;
  metrics::Histogram* build_ns;
};

const TwoHopMetrics& GetTwoHopMetrics() {
  static const TwoHopMetrics m = [] {
    auto& reg = metrics::Registry();
    TwoHopMetrics hm;
    hm.lookups = reg.GetCounter("reach.twohop.lookups_total");
    hm.unreachable = reg.GetCounter("reach.twohop.unreachable_total");
    hm.labels_scanned = reg.GetHistogram("reach.twohop.labels_scanned");
    hm.build_ns = reg.GetHistogram("reach.twohop.build_ns");
    return hm;
  }();
  return m;
}

// Metric bundles resolved once at namespace scope instead of per query:
// the function-local statics above still pay a guard-variable load on
// every call, which shows up on the ScoreOnly hot path (millions of
// lookups per eval run). Both getters are self-initializing, so the
// dynamic-init order here is safe.
const TwoHopMetrics& g_twohop_metrics = GetTwoHopMetrics();
const ScoreOnlyMetrics& g_scoreonly_metrics = GetScoreOnlyMetrics();

/// Per-thread query scratch: contributing-span indices, k-way merge
/// cursors, and an epoch-marked seen array for union counting. Reused
/// across queries so the steady-state hot path never allocates (vectors
/// keep their capacity between calls).
struct QueryScratch {
  std::vector<uint64_t> spans;
  std::vector<uint64_t> cursors;
  std::vector<uint32_t> seen;
  uint32_t seen_epoch = 0;
};

QueryScratch& TlsQueryScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

TwoHopIndex::TwoHopIndex(const graph::DirectedGraph* g, uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {}

TwoHopIndex TwoHopIndex::Build(const graph::DirectedGraph* g,
                               uint32_t max_hops, util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::ThreadPool::Shared();
  TwoHopIndex index(g, max_hops);
  index.build_in_labels_.resize(g->num_nodes());
  index.build_out_labels_.resize(g->num_nodes());
  metrics::ScopedStageTimer build_timer(g_twohop_metrics.build_ns);
  // The backward pass reads build_in_labels_[landmark] and appends to
  // out-labels of other nodes; the forward pass reads
  // build_out_labels_[landmark] and appends to in-labels of other nodes
  // (each skips the landmark itself). Their footprints are disjoint, so
  // the two BFS of one landmark run concurrently — each with its own
  // scratch — while the landmark order itself stays sequential.
  LandmarkScratch backward_scratch(g->num_nodes());
  LandmarkScratch forward_scratch(g->num_nodes());
  // Algorithm 2 line 1: landmarks in descending degree order, so that hub
  // nodes prune the most subsequent label entries.
  const auto degrees = graph::TotalDegrees(*g);
  for (NodeId landmark : graph::NodesByDegreeDescending(*g, degrees)) {
    pool->ParallelFor(0, 2, 1, [&](size_t pass) {
      if (pass == 0) {
        index.ProcessLandmarkBackward(landmark, backward_scratch);
      } else {
        index.ProcessLandmarkForward(landmark, forward_scratch);
      }
    });
  }
  // Canonical ordering enables two-pointer intersection at query time.
  // Nodes are independent here, so the sort/dedup pass fans out.
  const uint32_t n = g->num_nodes();
  pool->ParallelFor(0, n, 64, [&](size_t v) {
    auto& ins = index.build_in_labels_[v];
    std::sort(ins.begin(), ins.end(),
              [](const InLabel& a, const InLabel& b) {
                return a.node < b.node;
              });
    auto& outs = index.build_out_labels_[v];
    std::sort(outs.begin(), outs.end(),
              [](const BuildOutLabel& a, const BuildOutLabel& b) {
                return a.node < b.node;
              });
    for (auto& label : outs) {
      std::sort(label.followees.begin(), label.followees.end());
    }
  });
  index.FinalizeArenas();
  return index;
}

void TwoHopIndex::FinalizeArenas() {
  const uint32_t n = g_->num_nodes();
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    in_offsets[v + 1] = in_offsets[v] + build_in_labels_[v].size();
    out_offsets[v + 1] = out_offsets[v] + build_out_labels_[v].size();
  }
  std::vector<InLabel> in_entries(in_offsets[n]);
  std::vector<OutSpan> out_entries(out_offsets[n]);
  std::vector<uint64_t> followee_offsets(out_offsets[n] + 1, 0);

  uint64_t followee_total = 0;
  {
    uint64_t e = 0;
    for (NodeId v = 0; v < n; ++v) {
      for (const BuildOutLabel& label : build_out_labels_[v]) {
        followee_offsets[e] = followee_total;
        followee_total += label.followees.size();
        ++e;
      }
    }
    followee_offsets[out_offsets[n]] = followee_total;
  }
  std::vector<NodeId> followee_arena(followee_total);

  for (NodeId v = 0; v < n; ++v) {
    std::copy(build_in_labels_[v].begin(), build_in_labels_[v].end(),
              in_entries.begin() + static_cast<ptrdiff_t>(in_offsets[v]));
    uint64_t e = out_offsets[v];
    for (const BuildOutLabel& label : build_out_labels_[v]) {
      out_entries[e] = OutSpan{label.node, label.dist};
      std::copy(label.followees.begin(), label.followees.end(),
                followee_arena.begin() +
                    static_cast<ptrdiff_t>(followee_offsets[e]));
      ++e;
    }
  }

  in_offsets_.Own(std::move(in_offsets));
  in_entries_.Own(std::move(in_entries));
  out_offsets_.Own(std::move(out_offsets));
  out_entries_.Own(std::move(out_entries));
  followee_offsets_.Own(std::move(followee_offsets));
  followee_arena_.Own(std::move(followee_arena));

  // Release the construction scratch; the arenas are the index now.
  build_in_labels_ = {};
  build_out_labels_ = {};
  PublishArenaMetrics();
  PublishMmapLoadMetrics(kLoadModeBuilt, 0,
                         util::MmapFile::Advice::kNormal);
}

void TwoHopIndex::PublishArenaMetrics() const {
  const ArenaMetrics& am = GetArenaMetrics();
  am.in_entries->Set(static_cast<int64_t>(in_entries_.size()));
  am.out_entries->Set(static_cast<int64_t>(out_entries_.size()));
  am.followee_ids->Set(static_cast<int64_t>(followee_arena_.size()));
  am.bytes->Set(static_cast<int64_t>(IndexSizeBytes()));
}

void TwoHopIndex::ProcessLandmarkBackward(NodeId landmark,
                                          LandmarkScratch& scratch) {
  auto& hub_dist = scratch.hub_dist;
  auto& in_queue = scratch.in_queue;
  // hub_dist[w] = d(w, landmark) for every hub w that queries may meet at.
  std::vector<NodeId> touched_hubs;
  for (const InLabel& il : build_in_labels_[landmark]) {
    hub_dist[il.node] = il.dist;
    touched_hubs.push_back(il.node);
  }
  hub_dist[landmark] = 0;
  touched_hubs.push_back(landmark);

  // Distance + membership query against current labels:
  // min over hubs w in L_out(s) of d_sw + d(w, landmark); has_u reports
  // whether u already belongs to the unioned followee set at that minimum.
  auto query = [&](NodeId s, NodeId u) -> std::pair<uint32_t, bool> {
    uint32_t dmin = kInf;
    bool has_u = false;
    for (const BuildOutLabel& ol : build_out_labels_[s]) {
      uint32_t hd = hub_dist[ol.node];
      if (hd == kInf) continue;
      uint32_t total = ol.dist + hd;
      if (total < dmin) {
        dmin = total;
        has_u = Contains(ol.followees, u);
      } else if (total == dmin && !has_u) {
        has_u = Contains(ol.followees, u);
      }
    }
    return {dmin, has_u};
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    for (NodeId s : g_->InNeighbors(u)) {
      if (s == landmark) continue;
      auto [d, has_u] = query(s, u);
      if (len < d) {
        // A strictly shorter path s -> u ~> landmark: record the landmark
        // as a hub of s, remembering followee u (Algorithm 2 lines 11-19).
        build_out_labels_[s].push_back(BuildOutLabel{landmark, len, {u}});
        if (len < max_hops_ && !in_queue[s]) {
          in_queue[s] = 1;
          queue.emplace_back(s, len);
        }
      } else if (len == d && !has_u) {
        // A new shortest path through followee u (lines 20-27). Distances
        // of s's ancestors are unchanged, so s is not re-enqueued.
        // Entries for this landmark are only appended during this BFS, so
        // if one exists it is the most recent.
        if (!build_out_labels_[s].empty() &&
            build_out_labels_[s].back().node == landmark) {
          MEL_CHECK(build_out_labels_[s].back().dist == len);
          build_out_labels_[s].back().followees.push_back(u);
        } else {
          build_out_labels_[s].push_back(BuildOutLabel{landmark, len, {u}});
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist[w] = kInf;
  for (const auto& [node, len] : queue) in_queue[node] = 0;
}

void TwoHopIndex::ProcessLandmarkForward(NodeId landmark,
                                         LandmarkScratch& scratch) {
  auto& hub_dist = scratch.hub_dist;
  auto& in_queue = scratch.in_queue;
  std::vector<NodeId> touched_hubs;
  for (const BuildOutLabel& ol : build_out_labels_[landmark]) {
    hub_dist[ol.node] = ol.dist;
    touched_hubs.push_back(ol.node);
  }
  hub_dist[landmark] = 0;
  touched_hubs.push_back(landmark);

  auto query = [&](NodeId t) -> uint32_t {
    uint32_t dmin = kInf;
    for (const InLabel& il : build_in_labels_[t]) {
      uint32_t hd = hub_dist[il.node];
      if (hd == kInf) continue;
      dmin = std::min(dmin, hd + il.dist);
    }
    return dmin;
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    for (NodeId t : g_->OutNeighbors(u)) {
      if (t == landmark) continue;
      // L_in carries distances only; update when strictly shortened
      // (Algorithm 2 line 30).
      if (len < query(t)) {
        build_in_labels_[t].push_back(InLabel{landmark, len});
        if (len < max_hops_ && !in_queue[t]) {
          in_queue[t] = 1;
          queue.emplace_back(t, len);
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist[w] = kInf;
  for (const auto& [node, len] : queue) in_queue[node] = 0;
}

uint32_t TwoHopIndex::CollectMinDistanceSpans(
    NodeId u, NodeId v, std::vector<uint64_t>& spans) const {
  spans.clear();
  const auto outs = out_labels(u);
  const auto ins = in_labels(v);
  if (metrics::Enabled()) {
    g_twohop_metrics.labels_scanned->Record(outs.size() + ins.size());
  }

  // Degenerate hub w = u as an entry of L_in(v): contributes a distance
  // but no out-entry span. Labels are sorted by hub node, so it — and
  // the w = v entry below — are binary searches, not linear scans.
  // Seeding dmin with it first lets the main walk run the running-min
  // collection without ever re-filtering.
  uint32_t dmin = kInf;
  {
    auto it = std::lower_bound(
        ins.begin(), ins.end(), u,
        [](const InLabel& l, NodeId x) { return l.node < x; });
    if (it != ins.end() && it->node == u) dmin = it->dist;
  }

  // Single fused walk over both sorted label lists (the old layout
  // needed two passes — min, then collect — because labels lived in
  // per-node vectors). Spans are collected against the running minimum:
  // a strictly smaller distance resets the list, an equal one appends,
  // so at the end `spans` holds exactly the hubs achieving dmin
  // (Theorem 2) in walk order. The walk itself is the dispatched
  // min-sum kernel: both label structs are exactly a little-endian
  // (node lo32, dist hi32) u64 word, so the arenas reinterpret as the
  // packed layout the kernel wants with no copy.
  static_assert(sizeof(InLabel) == 8 && sizeof(OutSpan) == 8);
  static_assert(offsetof(InLabel, node) == 0 && offsetof(InLabel, dist) == 4);
  static_assert(offsetof(OutSpan, node) == 0 && offsetof(OutSpan, dist) == 4);
  static_assert(std::endian::native == std::endian::little,
                "packed u64 label view assumes little-endian");
  const uint64_t base = out_offsets_[u];
  {
    spans.resize(outs.size());
    size_t n_spans = 0;
    dmin = util::simd::MinSumSpansU64(
        reinterpret_cast<const uint64_t*>(outs.data()), outs.size(),
        reinterpret_cast<const uint64_t*>(ins.data()), ins.size(), dmin,
        base, spans.data(), &n_spans);
    spans.resize(n_spans);
  }
  // Degenerate hub w = v as an entry of L_out(u). L_in(v) never lists v
  // itself, so this entry cannot also have matched the intersection
  // above — no duplicate span indices.
  {
    auto it = std::lower_bound(
        outs.begin(), outs.end(), v,
        [](const OutSpan& o, NodeId x) { return o.node < x; });
    if (it != outs.end() && it->node == v && it->dist <= dmin) {
      if (it->dist < dmin) {
        dmin = it->dist;
        spans.clear();
      }
      spans.push_back(base + static_cast<uint64_t>(it - outs.begin()));
    }
  }
  if (dmin == kInf || dmin > max_hops_) {
    spans.clear();
    return kInf;
  }
  return dmin;
}

ReachQueryResult TwoHopIndex::Query(NodeId u, NodeId v) const {
  const TwoHopMetrics& hm = g_twohop_metrics;
  hm.lookups->Increment();
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  QueryScratch& scratch = TlsQueryScratch();
  const uint32_t dmin = CollectMinDistanceSpans(u, v, scratch.spans);
  if (dmin == kInf) {
    hm.unreachable->Increment();
    return result;
  }
  result.distance = dmin;

  const auto& spans = scratch.spans;
  if (spans.empty()) return result;
  if (spans.size() == 1) {
    // Followees of one label are already sorted and duplicate-free.
    const auto f = followees(spans[0]);
    result.followees.assign(f.begin(), f.end());
    return result;
  }
  // Single k-way merge over the sorted arena spans, skipping duplicates
  // as it goes — replaces the old concat + sort + std::unique pass.
  auto& cursors = scratch.cursors;
  cursors.assign(spans.size(), 0);
  for (;;) {
    NodeId next = 0;
    bool any = false;
    for (size_t k = 0; k < spans.size(); ++k) {
      const auto f = followees(spans[k]);
      if (cursors[k] < f.size() && (!any || f[cursors[k]] < next)) {
        next = f[cursors[k]];
        any = true;
      }
    }
    if (!any) break;
    result.followees.push_back(next);
    for (size_t k = 0; k < spans.size(); ++k) {
      const auto f = followees(spans[k]);
      if (cursors[k] < f.size() && f[cursors[k]] == next) ++cursors[k];
    }
  }
  return result;
}

namespace {

/// |union| over the collected arena spans, never materializing it.
/// One span is its own union; two spans use |A| + |B| − |A ∩ B| with the
/// merge/gallop kernel shared with the WLM inlink intersection; more
/// spans mark an epoch-versioned seen array — O(1) per element instead
/// of a k-way comparison per emitted node.
uint32_t CountSpanUnion(const TwoHopIndex& index, QueryScratch& scratch,
                        uint32_t num_nodes) {
  const auto& spans = scratch.spans;
  if (spans.empty()) return 0;
  if (spans.size() == 1) {
    return static_cast<uint32_t>(index.followees(spans[0]).size());
  }
  if (spans.size() == 2) {
    const auto a = index.followees(spans[0]);
    const auto b = index.followees(spans[1]);
    return static_cast<uint32_t>(a.size() + b.size()) -
           util::SortedIntersectCount(a, b);
  }
  if (scratch.seen.size() < num_nodes) scratch.seen.resize(num_nodes, 0);
  if (++scratch.seen_epoch == 0) {
    std::fill(scratch.seen.begin(), scratch.seen.end(), 0u);
    scratch.seen_epoch = 1;
  }
  const uint32_t epoch = scratch.seen_epoch;
  uint32_t count = 0;
  for (uint64_t s : spans) {
    for (NodeId t : index.followees(s)) {
      if (scratch.seen[t] != epoch) {
        scratch.seen[t] = epoch;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

ReachCountResult TwoHopIndex::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = g_scoreonly_metrics;
  sm.lookups->Increment();
  ReachCountResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  QueryScratch& scratch = TlsQueryScratch();
  const uint32_t dmin = CollectMinDistanceSpans(u, v, scratch.spans);
  if (dmin == kInf) {
    sm.unreachable->Increment();
    return result;
  }
  result.distance = dmin;
  result.followee_count =
      CountSpanUnion(*this, scratch, g_->num_nodes());
  return result;
}

double TwoHopIndex::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double TwoHopIndex::ScoreOnly(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = g_scoreonly_metrics;
  sm.lookups->Increment();
  if (u == v) return 1.0;
  QueryScratch& scratch = TlsQueryScratch();
  const uint32_t dmin = CollectMinDistanceSpans(u, v, scratch.spans);
  if (dmin == kInf) {
    sm.unreachable->Increment();
    return 0.0;
  }
  // Eq. 4 ignores the followee count at distance 1 and for sink users,
  // so the union is only ever counted when it contributes to the score.
  if (dmin == 1) return 1.0;
  const uint32_t out_degree = g_->OutDegree(u);
  if (out_degree == 0) return 0.0;
  return WeightedScoreFromCount(
      dmin, CountSpanUnion(*this, scratch, g_->num_nodes()), out_degree,
      /*same_node=*/false);
}

uint64_t TwoHopIndex::TotalLabelEntries() const {
  return in_entries_.size() + out_entries_.size();
}

MutationResult TwoHopIndex::OnGraphMutation(const MutationContext& ctx) {
  if (ctx.delta.op == graph::EdgeDelta::Op::kErase) {
    // Decremental cover maintenance is unsound: the new shortest path of
    // an affected pair was non-shortest before the erase and therefore
    // appears in no label. Rebuild from the mutated graph.
    *this = Build(g_, max_hops_, ctx.pool);
    return MutationResult::kRebuilt;
  }
  PatchInsertedEdge(ctx);
  return MutationResult::kPatched;
}

void TwoHopIndex::PatchInsertedEdge(const MutationContext& ctx) {
  const NodeId u = ctx.delta.u;
  const NodeId v = ctx.delta.v;
  // Exact post-insert BFS distances; d(a, u) and d(v, b) cannot route
  // through (u, v) — such a walk revisits an endpoint — so they equal
  // the PRE-insert values too.
  const std::vector<uint32_t>& to_u = *ctx.dist_to_u;      // d(a, u)
  const std::vector<uint32_t>& from_v = *ctx.dist_from_v;  // d(v, b)
  const uint32_t n = g_->num_nodes();

  // Unpack the arenas into the per-node build vectors. The arena members
  // stay untouched until FinalizeArenas, so label queries against *this
  // keep answering with PRE-insert distances — the Q_old oracle the
  // closed form needs.
  build_in_labels_.assign(n, {});
  build_out_labels_.assign(n, {});
  for (NodeId x = 0; x < n; ++x) {
    const auto ins = in_labels(x);
    build_in_labels_[x].assign(ins.begin(), ins.end());
    const auto outs = out_labels(x);
    auto& bo = build_out_labels_[x];
    bo.reserve(outs.size());
    for (size_t i = 0; i < outs.size(); ++i) {
      const auto f = followees(out_offsets_[x] + i);
      bo.push_back(BuildOutLabel{outs[i].node, outs[i].dist,
                                 {f.begin(), f.end()}});
    }
  }

  std::vector<uint64_t> span_scratch;
  auto old_dist = [&](NodeId s, NodeId t) -> uint32_t {
    return s == t ? 0 : CollectMinDistanceSpans(s, t, span_scratch);
  };
  auto through = [&](NodeId s, NodeId t) -> uint32_t {
    if (to_u[s] == kInf || from_v[t] == kInf) return kInf;
    const uint32_t c = to_u[s] + 1 + from_v[t];
    return c > max_hops_ ? kInf : c;
  };
  auto new_dist = [&](NodeId s, NodeId t) -> uint32_t {
    return std::min(old_dist(s, t), through(s, t));
  };
  // Theorem-1 followee set of the patched label (s, hub): followees at
  // new distance dnew - 1 from the hub.
  auto exact_followees = [&](NodeId s, NodeId hub, uint32_t dnew) {
    std::vector<NodeId> f;
    for (NodeId t : g_->OutNeighbors(s)) {
      const uint32_t dt = new_dist(t, hub);
      if (dt != kInf && dt + 1 == dnew) f.push_back(t);
    }
    return f;  // OutNeighbors is sorted, so f is too
  };

  // (a) Fix existing out-labels (s, h, d, F) that the edge can affect:
  // s reaches u, v reaches h, and the through-edge candidate is <= d. A
  // candidate of exactly d leaves the distance alone but can add tied
  // shortest paths, so F is recomputed for it as well; a candidate of
  // d + 1 or more cannot even touch F (every followee's through-edge
  // distance is >= candidate - 1 >= d).
  for (NodeId s = 0; s < n; ++s) {
    if (to_u[s] == kInf) continue;
    for (BuildOutLabel& label : build_out_labels_[s]) {
      const uint32_t cand = through(s, label.node);
      if (cand > label.dist) continue;  // kInf compares greater too
      label.dist = std::min(label.dist, cand);
      label.followees = exact_followees(s, label.node, label.dist);
    }
  }

  // (b) Fix existing in-labels (h, d) of t: h reaches u, v reaches t.
  for (NodeId t = 0; t < n; ++t) {
    if (from_v[t] == kInf) continue;
    for (InLabel& label : build_in_labels_[t]) {
      const uint32_t cand = through(label.node, t);
      if (cand < label.dist) label.dist = cand;
    }
  }

  // (c) Restore the cover for pairs routing through the new edge by
  // injecting hub u across the affected region (upserts keep the
  // by-hub-node sort order).
  auto upsert_out = [&](NodeId owner, NodeId hub, uint32_t dist,
                        std::vector<NodeId> f) {
    auto& outs = build_out_labels_[owner];
    auto it = std::lower_bound(
        outs.begin(), outs.end(), hub,
        [](const BuildOutLabel& l, NodeId x) { return l.node < x; });
    if (it != outs.end() && it->node == hub) {
      it->dist = dist;
      it->followees = std::move(f);
    } else {
      outs.insert(it, BuildOutLabel{hub, dist, std::move(f)});
    }
  };
  auto upsert_in = [&](NodeId owner, NodeId hub, uint32_t dist) {
    auto& ins = build_in_labels_[owner];
    auto it = std::lower_bound(
        ins.begin(), ins.end(), hub,
        [](const InLabel& l, NodeId x) { return l.node < x; });
    if (it != ins.end() && it->node == hub) {
      it->dist = std::min(it->dist, dist);
    } else {
      ins.insert(it, InLabel{hub, dist});
    }
  };

  // Out-label (a, u) on every node reaching u: d(a, u) is unchanged and
  // its followees are the first hops toward u (all within the BFS
  // bound, since to_u[t] = to_u[a] - 1 <= H - 1).
  for (NodeId a = 0; a < n; ++a) {
    if (a == u || to_u[a] == kInf) continue;
    std::vector<NodeId> f;
    for (NodeId t : g_->OutNeighbors(a)) {
      if (to_u[t] != kInf && to_u[t] + 1 == to_u[a]) f.push_back(t);
    }
    upsert_out(a, u, to_u[a], std::move(f));
  }
  // The edge itself: d(u, v) = 1 with F = {v}.
  upsert_out(u, v, 1, {v});
  for (NodeId b = 0; b < n; ++b) {
    if (from_v[b] == kInf) continue;
    // In-label (u -> b) meets the (a, u) out-labels above. Guarded by
    // the hop bound: 1 + from_v[b] can reach H + 1.
    if (b != u) {
      const uint32_t through_b =
          from_v[b] + 1 > max_hops_ ? kInf : from_v[b] + 1;
      const uint32_t dub = std::min(old_dist(u, b), through_b);
      if (dub <= max_hops_) upsert_in(b, u, dub);
    }
    // In-label (v -> b) meets the (u, v, 1, {v}) out-label: the
    // degenerate source-hub u in L_in(b) carries no followee span, so
    // pairs (u, b) need hub v to contribute F = {v}.
    if (b != v) upsert_in(b, v, from_v[b]);
  }

  FinalizeArenas();
  mapping_.reset();
}

namespace {
constexpr uint32_t kTwoHopMagic = 0x4d454c32;  // "MEL2"
constexpr uint32_t kTwoHopVersion = 2;  // v2: arena-flattened labels

// Offsets arrays must be monotone prefix sums covering their arena.
bool ValidOffsets(std::span<const uint64_t> offsets, uint64_t expect_size,
                  uint64_t arena_size) {
  if (offsets.size() != expect_size) return false;
  if (offsets.front() != 0 || offsets.back() != arena_size) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Status TwoHopIndex::Save(const std::string& path) const {
  const Mel3BlockDesc blocks[] = {
      Mel3BlockDesc::Of(Mel3BlockKind::kInOffsets, in_offsets_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kInEntries, in_entries_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kOutOffsets, out_offsets_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kOutEntries, out_entries_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kFolloweeOffsets,
                        followee_offsets_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kFolloweeArena,
                        followee_arena_.view()),
  };
  return WriteMel3File(path, kTwoHopMagic, kTwoHopVersion,
                       static_cast<uint32_t>(g_->num_nodes()), max_hops_,
                       blocks);
}

Status TwoHopIndex::ValidateOffsets() const {
  const uint64_t n = g_->num_nodes();
  if (!ValidOffsets(in_offsets_.view(), n + 1, in_entries_.size()) ||
      !ValidOffsets(out_offsets_.view(), n + 1, out_entries_.size()) ||
      !ValidOffsets(followee_offsets_.view(), out_entries_.size() + 1,
                    followee_arena_.size())) {
    return Status::InvalidArgument("corrupt arena offsets");
  }
  return Status::OK();
}

Status TwoHopIndex::ValidateNodeIds() const {
  const uint32_t n = g_->num_nodes();
  for (const InLabel& label : in_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  for (const OutSpan& label : out_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  for (NodeId id : followee_arena_) {
    if (id >= n) {
      return Status::InvalidArgument("corrupt followee node id");
    }
  }
  return Status::OK();
}

Result<TwoHopIndex> TwoHopIndex::Load(const std::string& path,
                                      const graph::DirectedGraph* g) {
  uint32_t magic = 0;
  {
    BinaryReader sniff(path);
    magic = sniff.ReadU32();
    if (!sniff.status().ok()) return sniff.status();
  }
  if (magic == kMel3Magic) {
    // MEL3 copying load: map + fully verify (checksums, node ids), then
    // materialize the arenas into owned heap storage and drop the
    // mapping.
    util::MmapLoadOptions opts;
    opts.map.advice = util::MmapFile::Advice::kSequential;
    opts.verify_checksums = true;
    auto mapped = LoadMapped(path, g, opts);
    if (!mapped.ok()) return mapped.status();
    TwoHopIndex index = std::move(mapped).value();
    index.MaterializeOwned();
    return index;
  }
  if (magic != kTwoHopMagic) {
    return Status::InvalidArgument("not a 2-hop index file");
  }
  // Legacy "MEL2" copying load: length-prefixed blocks behind a 16-byte
  // header, exactly the pre-MEL3 wire format. Kept so indexes saved by
  // earlier builds keep loading.
  BinaryReader reader(path);
  reader.ReadU32();  // magic, already sniffed
  uint32_t version = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  uint32_t max_hops = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (version != kTwoHopVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (n != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }
  TwoHopIndex index(g, max_hops);
  std::vector<uint64_t> in_offsets, out_offsets, followee_offsets;
  std::vector<InLabel> in_entries;
  std::vector<OutSpan> out_entries;
  std::vector<NodeId> followee_arena;
  reader.ReadVectorInto(&in_offsets);
  reader.ReadVectorInto(&in_entries);
  reader.ReadVectorInto(&out_offsets);
  reader.ReadVectorInto(&out_entries);
  reader.ReadVectorInto(&followee_offsets);
  reader.ReadVectorInto(&followee_arena);
  if (!reader.status().ok()) return reader.status();
  index.in_offsets_.Own(std::move(in_offsets));
  index.in_entries_.Own(std::move(in_entries));
  index.out_offsets_.Own(std::move(out_offsets));
  index.out_entries_.Own(std::move(out_entries));
  index.followee_offsets_.Own(std::move(followee_offsets));
  index.followee_arena_.Own(std::move(followee_arena));
  Status valid = index.ValidateOffsets();
  if (!valid.ok()) return valid;
  valid = index.ValidateNodeIds();
  if (!valid.ok()) return valid;
  index.PublishArenaMetrics();
  PublishMmapLoadMetrics(kLoadModeCopied, 0,
                         util::MmapFile::Advice::kNormal);
  return index;
}

Result<TwoHopIndex> TwoHopIndex::LoadMapped(
    const std::string& path, const graph::DirectedGraph* g,
    const util::MmapLoadOptions& opts) {
  auto file = util::MmapFile::Open(path, opts.map);
  if (!file.ok()) return file.status();
  auto shared = std::make_shared<const util::MmapFile>(
      std::move(file).value());
  auto parsed = Mel3View::Parse(shared, kTwoHopMagic);
  if (!parsed.ok()) return parsed.status();
  const Mel3View& view = parsed.value();
  if (view.header().inner_version != kTwoHopVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (view.header().num_nodes != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }

  auto in_offsets = view.Block<uint64_t>(Mel3BlockKind::kInOffsets);
  auto in_entries = view.Block<InLabel>(Mel3BlockKind::kInEntries);
  auto out_offsets = view.Block<uint64_t>(Mel3BlockKind::kOutOffsets);
  auto out_entries = view.Block<OutSpan>(Mel3BlockKind::kOutEntries);
  auto followee_offsets =
      view.Block<uint64_t>(Mel3BlockKind::kFolloweeOffsets);
  auto followee_arena = view.Block<NodeId>(Mel3BlockKind::kFolloweeArena);
  for (const Status& s :
       {in_offsets.status(), in_entries.status(), out_offsets.status(),
        out_entries.status(), followee_offsets.status(),
        followee_arena.status()}) {
    if (!s.ok()) return s;
  }

  // Zero-copy bind: the spans point straight into the mapping. Only the
  // offset arrays are walked for validation — arena payload pages stay
  // untouched until queries fault them in.
  TwoHopIndex index(g, view.header().max_hops);
  index.in_offsets_.BindView(in_offsets.value());
  index.in_entries_.BindView(in_entries.value());
  index.out_offsets_.BindView(out_offsets.value());
  index.out_entries_.BindView(out_entries.value());
  index.followee_offsets_.BindView(followee_offsets.value());
  index.followee_arena_.BindView(followee_arena.value());
  index.mapping_ = shared;

  Status valid = index.ValidateOffsets();
  if (!valid.ok()) return valid;
  if (opts.verify_checksums) {
    valid = view.VerifyBlockChecksums();
    if (!valid.ok()) return valid;
    valid = index.ValidateNodeIds();
    if (!valid.ok()) return valid;
  }
  index.PublishArenaMetrics();
  PublishMmapLoadMetrics(kLoadModeMapped, shared->size(),
                         opts.map.advice);
  return index;
}

void TwoHopIndex::MaterializeOwned() {
  auto copy = [](auto& arena) {
    using T = std::remove_const_t<
        typename decltype(arena.view())::element_type>;
    if (!arena.owns_storage()) {
      arena.Own(std::vector<T>(arena.begin(), arena.end()));
    }
  };
  copy(in_offsets_);
  copy(in_entries_);
  copy(out_offsets_);
  copy(out_entries_);
  copy(followee_offsets_);
  copy(followee_arena_);
  mapping_.reset();
  PublishMmapLoadMetrics(kLoadModeCopied, 0,
                         util::MmapFile::Advice::kNormal);
}

uint64_t TwoHopIndex::IndexSizeBytes() const {
  return in_offsets_.size() * sizeof(uint64_t) +
         in_entries_.size() * sizeof(InLabel) +
         out_offsets_.size() * sizeof(uint64_t) +
         out_entries_.size() * sizeof(OutSpan) +
         followee_offsets_.size() * sizeof(uint64_t) +
         followee_arena_.size() * sizeof(NodeId);
}

uint64_t TwoHopIndex::LegacyIndexSizeBytes() const {
  // Pre-arena layout: vector-of-vectors on both sides (24-byte vector
  // header per node per side), 8-byte in-labels, out-labels carrying an
  // inline std::vector<NodeId> (8 B node+dist plus a 24-byte vector
  // header) with followee ids in per-label heap blocks.
  const uint64_t vector_header = 3 * sizeof(void*);
  const uint64_t n = g_->num_nodes();
  return 2 * n * vector_header + in_entries_.size() * sizeof(InLabel) +
         out_entries_.size() * (sizeof(OutSpan) + vector_header) +
         followee_arena_.size() * sizeof(NodeId);
}

}  // namespace mel::reach

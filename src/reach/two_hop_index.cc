#include "reach/two_hop_index.h"

#include <algorithm>

#include "graph/stats.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialize.h"

namespace mel::reach {

namespace {

constexpr uint32_t kInf = kUnreachableDistance;

bool Contains(const std::vector<NodeId>& vec, NodeId x) {
  return std::find(vec.begin(), vec.end(), x) != vec.end();
}

struct TwoHopMetrics {
  metrics::Counter* lookups;
  metrics::Counter* unreachable;
  metrics::Histogram* labels_scanned;
  metrics::Histogram* build_ns;
};

const TwoHopMetrics& GetTwoHopMetrics() {
  static const TwoHopMetrics m = [] {
    auto& reg = metrics::Registry();
    TwoHopMetrics hm;
    hm.lookups = reg.GetCounter("reach.twohop.lookups_total");
    hm.unreachable = reg.GetCounter("reach.twohop.unreachable_total");
    hm.labels_scanned = reg.GetHistogram("reach.twohop.labels_scanned");
    hm.build_ns = reg.GetHistogram("reach.twohop.build_ns");
    return hm;
  }();
  return m;
}

}  // namespace

TwoHopIndex::TwoHopIndex(const graph::DirectedGraph* g, uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {
  in_labels_.resize(g->num_nodes());
  out_labels_.resize(g->num_nodes());
}

TwoHopIndex TwoHopIndex::Build(const graph::DirectedGraph* g,
                               uint32_t max_hops, util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::ThreadPool::Shared();
  TwoHopIndex index(g, max_hops);
  metrics::ScopedStageTimer build_timer(GetTwoHopMetrics().build_ns);
  // The backward pass reads in_labels_[landmark] and appends to
  // out-labels of other nodes; the forward pass reads
  // out_labels_[landmark] and appends to in-labels of other nodes
  // (each skips the landmark itself). Their footprints are disjoint, so
  // the two BFS of one landmark run concurrently — each with its own
  // scratch — while the landmark order itself stays sequential.
  LandmarkScratch backward_scratch(g->num_nodes());
  LandmarkScratch forward_scratch(g->num_nodes());
  // Algorithm 2 line 1: landmarks in descending degree order, so that hub
  // nodes prune the most subsequent label entries.
  const auto degrees = graph::TotalDegrees(*g);
  for (NodeId landmark : graph::NodesByDegreeDescending(*g, degrees)) {
    pool->ParallelFor(0, 2, 1, [&](size_t pass) {
      if (pass == 0) {
        index.ProcessLandmarkBackward(landmark, backward_scratch);
      } else {
        index.ProcessLandmarkForward(landmark, forward_scratch);
      }
    });
  }
  // Canonical ordering enables two-pointer intersection at query time.
  // Nodes are independent here, so the sort/dedup pass fans out.
  const uint32_t n = g->num_nodes();
  pool->ParallelFor(0, n, 64, [&](size_t v) {
    auto& ins = index.in_labels_[v];
    std::sort(ins.begin(), ins.end(),
              [](const InLabel& a, const InLabel& b) {
                return a.node < b.node;
              });
    auto& outs = index.out_labels_[v];
    std::sort(outs.begin(), outs.end(),
              [](const OutLabel& a, const OutLabel& b) {
                return a.node < b.node;
              });
    for (auto& label : outs) {
      std::sort(label.followees.begin(), label.followees.end());
    }
  });
  return index;
}

void TwoHopIndex::ProcessLandmarkBackward(NodeId landmark,
                                          LandmarkScratch& scratch) {
  auto& hub_dist = scratch.hub_dist;
  auto& in_queue = scratch.in_queue;
  // hub_dist[w] = d(w, landmark) for every hub w that queries may meet at.
  std::vector<NodeId> touched_hubs;
  for (const InLabel& il : in_labels_[landmark]) {
    hub_dist[il.node] = il.dist;
    touched_hubs.push_back(il.node);
  }
  hub_dist[landmark] = 0;
  touched_hubs.push_back(landmark);

  // Distance + membership query against current labels:
  // min over hubs w in L_out(s) of d_sw + d(w, landmark); has_u reports
  // whether u already belongs to the unioned followee set at that minimum.
  auto query = [&](NodeId s, NodeId u) -> std::pair<uint32_t, bool> {
    uint32_t dmin = kInf;
    bool has_u = false;
    for (const OutLabel& ol : out_labels_[s]) {
      uint32_t hd = hub_dist[ol.node];
      if (hd == kInf) continue;
      uint32_t total = ol.dist + hd;
      if (total < dmin) {
        dmin = total;
        has_u = Contains(ol.followees, u);
      } else if (total == dmin && !has_u) {
        has_u = Contains(ol.followees, u);
      }
    }
    return {dmin, has_u};
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    for (NodeId s : g_->InNeighbors(u)) {
      if (s == landmark) continue;
      auto [d, has_u] = query(s, u);
      if (len < d) {
        // A strictly shorter path s -> u ~> landmark: record the landmark
        // as a hub of s, remembering followee u (Algorithm 2 lines 11-19).
        out_labels_[s].push_back(OutLabel{landmark, len, {u}});
        if (len < max_hops_ && !in_queue[s]) {
          in_queue[s] = 1;
          queue.emplace_back(s, len);
        }
      } else if (len == d && !has_u) {
        // A new shortest path through followee u (lines 20-27). Distances
        // of s's ancestors are unchanged, so s is not re-enqueued.
        // Entries for this landmark are only appended during this BFS, so
        // if one exists it is the most recent.
        if (!out_labels_[s].empty() &&
            out_labels_[s].back().node == landmark) {
          MEL_CHECK(out_labels_[s].back().dist == len);
          out_labels_[s].back().followees.push_back(u);
        } else {
          out_labels_[s].push_back(OutLabel{landmark, len, {u}});
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist[w] = kInf;
  for (const auto& [node, len] : queue) in_queue[node] = 0;
}

void TwoHopIndex::ProcessLandmarkForward(NodeId landmark,
                                         LandmarkScratch& scratch) {
  auto& hub_dist = scratch.hub_dist;
  auto& in_queue = scratch.in_queue;
  std::vector<NodeId> touched_hubs;
  for (const OutLabel& ol : out_labels_[landmark]) {
    hub_dist[ol.node] = ol.dist;
    touched_hubs.push_back(ol.node);
  }
  hub_dist[landmark] = 0;
  touched_hubs.push_back(landmark);

  auto query = [&](NodeId t) -> uint32_t {
    uint32_t dmin = kInf;
    for (const InLabel& il : in_labels_[t]) {
      uint32_t hd = hub_dist[il.node];
      if (hd == kInf) continue;
      dmin = std::min(dmin, hd + il.dist);
    }
    return dmin;
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    for (NodeId t : g_->OutNeighbors(u)) {
      if (t == landmark) continue;
      // L_in carries distances only; update when strictly shortened
      // (Algorithm 2 line 30).
      if (len < query(t)) {
        in_labels_[t].push_back(InLabel{landmark, len});
        if (len < max_hops_ && !in_queue[t]) {
          in_queue[t] = 1;
          queue.emplace_back(t, len);
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist[w] = kInf;
  for (const auto& [node, len] : queue) in_queue[node] = 0;
}

ReachQueryResult TwoHopIndex::Query(NodeId u, NodeId v) const {
  const TwoHopMetrics& hm = GetTwoHopMetrics();
  hm.lookups->Increment();
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  const auto& outs = out_labels_[u];
  const auto& ins = in_labels_[v];
  if (metrics::Enabled()) {
    hm.labels_scanned->Record(outs.size() + ins.size());
  }

  // Pass 1: minimum distance over all meeting hubs, including the two
  // degenerate hubs w = v (entry of L_out(u)) and w = u (entry of L_in(v)).
  uint32_t dmin = kInf;
  {
    size_t i = 0, j = 0;
    while (i < outs.size() && j < ins.size()) {
      if (outs[i].node < ins[j].node) {
        ++i;
      } else if (outs[i].node > ins[j].node) {
        ++j;
      } else {
        dmin = std::min(dmin, outs[i].dist + ins[j].dist);
        ++i;
        ++j;
      }
    }
  }
  for (const OutLabel& ol : outs) {
    if (ol.node == v) dmin = std::min(dmin, ol.dist);
  }
  for (const InLabel& il : ins) {
    if (il.node == u) dmin = std::min(dmin, il.dist);
  }
  if (dmin == kInf || dmin > max_hops_) {
    hm.unreachable->Increment();
    return result;
  }
  result.distance = dmin;

  // Pass 2 (Theorem 2): union the followee sets of every hub achieving
  // the minimum distance.
  {
    size_t i = 0, j = 0;
    while (i < outs.size() && j < ins.size()) {
      if (outs[i].node < ins[j].node) {
        ++i;
      } else if (outs[i].node > ins[j].node) {
        ++j;
      } else {
        if (outs[i].dist + ins[j].dist == dmin) {
          result.followees.insert(result.followees.end(),
                                  outs[i].followees.begin(),
                                  outs[i].followees.end());
        }
        ++i;
        ++j;
      }
    }
  }
  for (const OutLabel& ol : outs) {
    if (ol.node == v && ol.dist == dmin) {
      result.followees.insert(result.followees.end(), ol.followees.begin(),
                              ol.followees.end());
    }
  }
  std::sort(result.followees.begin(), result.followees.end());
  result.followees.erase(
      std::unique(result.followees.begin(), result.followees.end()),
      result.followees.end());
  return result;
}

double TwoHopIndex::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

uint64_t TwoHopIndex::TotalLabelEntries() const {
  uint64_t total = 0;
  for (const auto& labels : in_labels_) total += labels.size();
  for (const auto& labels : out_labels_) total += labels.size();
  return total;
}

namespace {
constexpr uint32_t kTwoHopMagic = 0x4d454c32;  // "MEL2"
constexpr uint32_t kTwoHopVersion = 1;
}  // namespace

Status TwoHopIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU32(kTwoHopMagic);
  writer.WriteU32(kTwoHopVersion);
  writer.WriteU32(static_cast<uint32_t>(in_labels_.size()));
  writer.WriteU32(max_hops_);
  for (const auto& labels : in_labels_) {
    writer.WriteU64(labels.size());
    for (const InLabel& label : labels) {
      writer.WriteU32(label.node);
      writer.WriteU32(label.dist);
    }
  }
  for (const auto& labels : out_labels_) {
    writer.WriteU64(labels.size());
    for (const OutLabel& label : labels) {
      writer.WriteU32(label.node);
      writer.WriteU32(label.dist);
      writer.WriteVector(label.followees);
    }
  }
  return writer.Finish();
}

Result<TwoHopIndex> TwoHopIndex::Load(const std::string& path,
                                      const graph::DirectedGraph* g) {
  BinaryReader reader(path);
  uint32_t magic = reader.ReadU32();
  uint32_t version = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  uint32_t max_hops = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kTwoHopMagic) {
    return Status::InvalidArgument("not a 2-hop index file");
  }
  if (version != kTwoHopVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (n != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }
  TwoHopIndex index(g, max_hops);
  for (NodeId v = 0; v < n; ++v) {
    uint64_t count = reader.ReadU64();
    if (!reader.status().ok()) return reader.status();
    if (count > BinaryReader::kMaxElements) {
      return Status::InvalidArgument("corrupt label count");
    }
    index.in_labels_[v].resize(count);
    for (auto& label : index.in_labels_[v]) {
      label.node = reader.ReadU32();
      label.dist = reader.ReadU32();
      if (label.node >= n) {
        return Status::InvalidArgument("corrupt label node id");
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    uint64_t count = reader.ReadU64();
    if (!reader.status().ok()) return reader.status();
    if (count > BinaryReader::kMaxElements) {
      return Status::InvalidArgument("corrupt label count");
    }
    index.out_labels_[v].resize(count);
    for (auto& label : index.out_labels_[v]) {
      label.node = reader.ReadU32();
      label.dist = reader.ReadU32();
      label.followees = reader.ReadVector<NodeId>();
      if (label.node >= n) {
        return Status::InvalidArgument("corrupt label node id");
      }
    }
  }
  if (!reader.status().ok()) return reader.status();
  return index;
}

uint64_t TwoHopIndex::IndexSizeBytes() const {
  uint64_t total = 0;
  for (const auto& labels : in_labels_) {
    total += labels.size() * sizeof(InLabel);
  }
  for (const auto& labels : out_labels_) {
    total += labels.size() * (sizeof(NodeId) + sizeof(uint32_t) +
                              sizeof(void*));
    for (const auto& label : labels) {
      total += label.followees.size() * sizeof(NodeId);
    }
  }
  return total;
}

}  // namespace mel::reach

#ifndef MEL_REACH_WEIGHTED_REACHABILITY_H_
#define MEL_REACH_WEIGHTED_REACHABILITY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/mutation.h"

namespace mel::util {
class ThreadPool;
}  // namespace mel::util

namespace mel::reach {

using graph::NodeId;

/// Distance reported when the target is not reachable within H hops.
inline constexpr uint32_t kUnreachableDistance =
    std::numeric_limits<uint32_t>::max();

/// \brief Raw answer of a weighted reachability query (Eq. 5):
/// shortest-path distance plus the source's followees participating in at
/// least one shortest path.
struct ReachQueryResult {
  uint32_t distance = kUnreachableDistance;
  std::vector<NodeId> followees;  // F_uv, sorted ascending

  bool reachable() const { return distance != kUnreachableDistance; }
};

/// \brief Count-only answer of a weighted reachability query: shortest
/// distance plus |F_uv| with the followee set never materialized. Enough
/// for the Eq.-4 score, which only divides the set's cardinality.
struct ReachCountResult {
  uint32_t distance = kUnreachableDistance;
  uint32_t followee_count = 0;

  bool reachable() const { return distance != kUnreachableDistance; }
};

/// \brief Eq.-4 score from (distance, |F_uv|) alone. Shares the exact
/// branch structure and arithmetic of WeightedScore below so Score and
/// ScoreOnly are bitwise equal on every backend.
inline double WeightedScoreFromCount(uint32_t distance,
                                     uint32_t followee_count,
                                     uint32_t out_degree, bool same_node) {
  if (same_node) return 1.0;
  if (distance == kUnreachableDistance) return 0.0;
  if (distance == 1) return 1.0;
  if (out_degree == 0) return 0.0;
  return (1.0 / distance) *
         (static_cast<double>(followee_count) / out_degree);
}

/// \brief Converts a query result to the weighted reachability score of
/// Eq. 4, with the conventions fixed by Algorithm 1 of the paper:
///   R(u, u)               = 1            (trivially reachable)
///   R(u, v), v in F_u     = 1            (Algorithm 1 line 3)
///   R(u, v), d_uv >= 2    = (1 / d_uv) * |F_uv| / |F_u|
///   unreachable within H  = 0
inline double WeightedScore(const ReachQueryResult& r, uint32_t out_degree,
                            bool same_node) {
  return WeightedScoreFromCount(r.distance,
                                static_cast<uint32_t>(r.followees.size()),
                                out_degree, same_node);
}

/// How a backend serviced a graph mutation (the mutate-or-invalidate
/// contract, see docs/ARCHITECTURE.md).
enum class MutationResult : uint8_t {
  kPatched,     ///< index updated in place (no full rebuild)
  kRebuilt,     ///< index discarded and rebuilt from the mutated graph
  kUnaffected,  ///< backend reads the live graph; nothing to do
};

/// \brief Context handed to OnGraphMutation after the graph has already
/// been mutated.
///
/// The maintainer computes two bounded BFS frontiers once and shares
/// them with every registered index:
///   dist_to_u[a]   = d(a, u) on the POST-mutation graph (backward BFS)
///   dist_from_v[b] = d(v, b) on the POST-mutation graph (forward BFS)
/// Both use kUnreachableDistance for "beyond the hop bound". For the
/// edge (u, v) these are valid for insert AND erase: no shortest path TO
/// u can use (u, v) (it would leave u and have to return), and none FROM
/// v can either (it would have to re-enter v).
struct MutationContext {
  graph::EdgeDelta delta;
  /// The already-mutated graph. For EdgeDelta::Op::kInsert the edge is
  /// present; for kErase it is gone.
  const graph::DirectedGraph* graph = nullptr;
  const std::vector<uint32_t>* dist_to_u = nullptr;
  const std::vector<uint32_t>* dist_from_v = nullptr;
  /// Optional pool for backends whose rebuild path is parallel.
  util::ThreadPool* pool = nullptr;
};

/// \brief Common interface of the three weighted-reachability backends
/// (naive BFS, extended transitive closure, extended 2-hop cover).
///
/// All backends answer with identical semantics; they differ in
/// pre-computation time, index size, and query latency — the trade-off
/// studied in Table 5 of the paper.
class WeightedReachability {
 public:
  virtual ~WeightedReachability() = default;

  /// Weighted reachability score R(u, v) in [0, 1].
  virtual double Score(NodeId u, NodeId v) const = 0;

  /// Raw distance + followee-set query (Eq. 5). Backends that only store
  /// scores (the transitive closure) do not implement this.
  virtual ReachQueryResult Query(NodeId u, NodeId v) const = 0;

  /// Count-only query: (d_uv, |F_uv|) without materializing F_uv. The
  /// default derives the pair from Query(); backends override it with an
  /// allocation-free counting path.
  virtual ReachCountResult CountQuery(NodeId u, NodeId v) const {
    const ReachQueryResult r = Query(u, v);
    return ReachCountResult{r.distance,
                            static_cast<uint32_t>(r.followees.size())};
  }

  /// Eq.-4 score via the count-only path. Bitwise equal to Score() on
  /// every backend (both funnel through WeightedScoreFromCount); the
  /// default simply forwards so existing subclasses stay correct.
  virtual double ScoreOnly(NodeId u, NodeId v) const { return Score(u, v); }

  /// Reacts to a graph mutation that has ALREADY been applied to the
  /// underlying graph. Implementations either patch their index in
  /// place, rebuild it, or return kUnaffected when they read the live
  /// graph on every query (the naive backend). Never called
  /// concurrently with queries — the caller (ReachMaintainer, or the
  /// serving epoch barrier) provides that exclusion.
  virtual MutationResult OnGraphMutation(const MutationContext&) {
    return MutationResult::kUnaffected;
  }

  /// Approximate index footprint in bytes (0 for index-free backends).
  virtual uint64_t IndexSizeBytes() const = 0;

  /// Human-readable backend name for benchmark tables.
  virtual const char* Name() const = 0;
};

}  // namespace mel::reach

#endif  // MEL_REACH_WEIGHTED_REACHABILITY_H_

#ifndef MEL_REACH_REACH_CACHE_H_
#define MEL_REACH_REACH_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"

namespace mel::reach {

/// \brief Sharded read-through cache in front of a weighted-reachability
/// backend, memoizing (u, v) -> ReachQueryResult and, separately,
/// (u, v) -> (distance, |F_uv|) for the count-only fast path.
///
/// The S_in stage (Eq. 4 via Eq. 8) asks for reachability from the
/// querying user to each candidate's top-k influential users — and the
/// influential users of popular candidates repeat across mentions, so a
/// BFS-priced backend (NaiveReachability, PrunedOnlineSearch) pays the
/// same traversal over and over. This wrapper answers repeats from a
/// hash map instead; it is pointless in front of the O(1) transitive
/// closure and of marginal use before the 2-hop cover.
///
/// Count entries pack (distance, count) into one uint64 — far smaller
/// than a materialized followee vector, so the same byte budget holds
/// many more of them. A CountQuery miss that finds the pair in the full
/// result map derives the count from it instead of hitting the backend.
///
/// Concurrency: each shard is guarded by its own mutex, so readers on
/// different shards never contend; the underlying backend must be safe
/// for concurrent reads (all of them are, post per-thread BFS scratch).
/// Hit/miss/eviction counts are exported as `reach.cache.*` metrics and
/// the live payload footprint as the `reach.cache.bytes` gauge.
///
/// Capacity is bounded per shard (each map separately); an insert into a
/// full map clears that map first (cheap, and repeat-heavy workloads
/// refill the hot pairs immediately). The cache snapshots a static
/// graph — call Invalidate() after any online graph mutation.
class CachedReachability : public WeightedReachability {
 public:
  struct Options {
    uint32_t num_shards = 16;          // rounded up to a power of two
    size_t max_entries_per_shard = 1 << 16;  // 0 = unbounded
  };

  /// Neither pointer is owned; both must outlive the cache. The graph is
  /// needed to convert cached query results into Eq.-4 scores (|F_u|).
  CachedReachability(const WeightedReachability* base,
                     const graph::DirectedGraph* g, Options options);
  CachedReachability(const WeightedReachability* base,
                     const graph::DirectedGraph* g)
      : CachedReachability(base, g, Options()) {}
  ~CachedReachability() override;

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return name_.c_str(); }

  /// Drops every cached entry (e.g. after an edge insertion).
  void Invalidate();

  /// Precise invalidation: drops only entries (a, b) the mutation of
  /// edge (u, v) can affect — a reaches u and v reaches b within the hop
  /// bound (the pair can route through the edge), or a == u (whose
  /// out-degree, Eq. 4's denominator, changed). Everything else is
  /// provably still exact and stays cached.
  void InvalidateAffected(const MutationContext& ctx);

  /// Mutate-or-invalidate contract: runs InvalidateAffected. The cache
  /// deliberately does NOT forward the mutation to the wrapped backend —
  /// register the backend with the maintainer separately, before the
  /// cache, so it is patched first.
  MutationResult OnGraphMutation(const MutationContext& ctx) override;

  /// Entries currently cached (both maps), summed over shards
  /// (approximate under concurrent writes).
  size_t ApproxEntries() const;

  /// Payload bytes of the live entries, summed over shards — what the
  /// reach.cache.bytes gauge reports (excludes hash bucket arrays, which
  /// IndexSizeBytes adds on top).
  uint64_t ApproxPayloadBytes() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, ReachQueryResult> entries;
    // (distance << 32) | followee_count, keyed like `entries`.
    std::unordered_map<uint64_t, uint64_t> count_entries;
    // Payload bytes of both maps' live entries (nodes + followee heap).
    uint64_t payload_bytes = 0;
  };

  Shard& ShardFor(uint64_t key) const {
    // Multiplicative mix so that dense node-id ranges spread over shards.
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return shards_[(h >> 48) & shard_mask_];
  }

  const WeightedReachability* base_;
  const graph::DirectedGraph* g_;
  size_t max_entries_per_shard_;
  uint64_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  std::string name_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_REACH_CACHE_H_

#include "reach/reach_maintainer.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace mel::reach {

namespace {

struct MaintainerMetrics {
  metrics::Counter* applied;
  metrics::Counter* noops;
  metrics::Counter* inserts;
  metrics::Counter* erases;
  metrics::Counter* patched;
  metrics::Counter* rebuilt;
  metrics::Counter* unaffected;
  metrics::Histogram* apply_ns;
  metrics::Histogram* affected_nodes;
};

const MaintainerMetrics& GetMaintainerMetrics() {
  static const MaintainerMetrics m = [] {
    auto& reg = metrics::Registry();
    MaintainerMetrics mm;
    mm.applied = reg.GetCounter("graph.mutation.applied_total");
    mm.noops = reg.GetCounter("graph.mutation.noop_total");
    mm.inserts = reg.GetCounter("graph.mutation.inserts_total");
    mm.erases = reg.GetCounter("graph.mutation.erases_total");
    mm.patched = reg.GetCounter("reach.patch.patched_total");
    mm.rebuilt = reg.GetCounter("reach.patch.rebuilt_total");
    mm.unaffected = reg.GetCounter("reach.patch.unaffected_total");
    mm.apply_ns = reg.GetHistogram("reach.patch.apply_ns");
    mm.affected_nodes = reg.GetHistogram("reach.patch.affected_nodes");
    return mm;
  }();
  return m;
}

}  // namespace

ReachMaintainer::ReachMaintainer(graph::DirectedGraph* g, uint32_t max_hops,
                                 util::ThreadPool* pool)
    : g_(g), max_hops_(max_hops), pool_(pool) {
  MEL_CHECK(g != nullptr);
}

void ReachMaintainer::Register(WeightedReachability* index) {
  MEL_CHECK(index != nullptr);
  indexes_.push_back(index);
}

ReachMaintainer::ApplyResult ReachMaintainer::ApplyDelta(
    const graph::EdgeDelta& delta) {
  const MaintainerMetrics& mm = GetMaintainerMetrics();
  ApplyResult result;
  const bool mutated = delta.op == graph::EdgeDelta::Op::kInsert
                           ? g_->InsertEdge(delta.u, delta.v)
                           : g_->EraseEdge(delta.u, delta.v);
  if (!mutated) {
    mm.noops->Increment();
    return result;
  }
  metrics::ScopedStageTimer apply_timer(mm.apply_ns);
  result.applied = true;
  mm.applied->Increment();
  (delta.op == graph::EdgeDelta::Op::kInsert ? mm.inserts : mm.erases)
      ->Increment();

  // One backward and one forward bounded BFS, shared by every hook. For
  // the mutated edge (u, v) neither d(*, u) nor d(v, *) can route
  // through the edge itself, so these post-mutation frontiers equal the
  // pre-mutation ones — exactly what both patch directions need.
  const uint32_t n = g_->num_nodes();
  dist_to_u_.assign(n, kUnreachableDistance);
  dist_from_v_.assign(n, kUnreachableDistance);
  auto& scratch = graph::BfsScratch::ThreadLocal(n);
  scratch.RunBackward(*g_, delta.u, max_hops_);
  for (graph::NodeId x : scratch.Touched()) {
    dist_to_u_[x] = scratch.Distance(x);
  }
  const size_t reaching_u = scratch.Touched().size();
  scratch.RunForward(*g_, delta.v, max_hops_);
  for (graph::NodeId x : scratch.Touched()) {
    dist_from_v_[x] = scratch.Distance(x);
  }
  if (metrics::Enabled()) {
    mm.affected_nodes->Record(reaching_u + scratch.Touched().size());
  }

  MutationContext ctx;
  ctx.delta = delta;
  ctx.graph = g_;
  ctx.dist_to_u = &dist_to_u_;
  ctx.dist_from_v = &dist_from_v_;
  ctx.pool = pool_;
  result.results.reserve(indexes_.size());
  for (WeightedReachability* index : indexes_) {
    const MutationResult r = index->OnGraphMutation(ctx);
    switch (r) {
      case MutationResult::kPatched:
        mm.patched->Increment();
        break;
      case MutationResult::kRebuilt:
        mm.rebuilt->Increment();
        break;
      case MutationResult::kUnaffected:
        mm.unaffected->Increment();
        break;
    }
    result.results.push_back(r);
  }
  return result;
}

}  // namespace mel::reach

#include "reach/distance_label_index.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "graph/stats.h"
#include "reach/reach_metrics.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace mel::reach {

namespace {
constexpr uint32_t kInf = kUnreachableDistance;
}  // namespace

DistanceLabelIndex::DistanceLabelIndex(const graph::DirectedGraph* g,
                                       uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {}

DistanceLabelIndex DistanceLabelIndex::Build(const graph::DirectedGraph* g,
                                             uint32_t max_hops) {
  DistanceLabelIndex index(g, max_hops);
  index.build_in_labels_.resize(g->num_nodes());
  index.build_out_labels_.resize(g->num_nodes());
  index.hub_dist_.assign(g->num_nodes(), kInf);
  index.in_queue_.assign(g->num_nodes(), 0);
  const auto degrees = graph::TotalDegrees(*g);
  for (NodeId landmark : graph::NodesByDegreeDescending(*g, degrees)) {
    index.ProcessLandmark(landmark, /*forward=*/false);
    index.ProcessLandmark(landmark, /*forward=*/true);
  }
  for (auto& labels : index.build_in_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  for (auto& labels : index.build_out_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  index.FinalizeArenas();
  return index;
}

void DistanceLabelIndex::FinalizeArenas() {
  const uint32_t n = g_->num_nodes();
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    in_offsets[v + 1] = in_offsets[v] + build_in_labels_[v].size();
    out_offsets[v + 1] = out_offsets[v] + build_out_labels_[v].size();
  }
  std::vector<Label> in_entries(in_offsets[n]);
  std::vector<Label> out_entries(out_offsets[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::copy(build_in_labels_[v].begin(), build_in_labels_[v].end(),
              in_entries.begin() + static_cast<ptrdiff_t>(in_offsets[v]));
    std::copy(build_out_labels_[v].begin(), build_out_labels_[v].end(),
              out_entries.begin() + static_cast<ptrdiff_t>(out_offsets[v]));
  }
  in_offsets_.Own(std::move(in_offsets));
  in_entries_.Own(std::move(in_entries));
  out_offsets_.Own(std::move(out_offsets));
  out_entries_.Own(std::move(out_entries));
  build_in_labels_ = {};
  build_out_labels_ = {};
  hub_dist_ = {};
  in_queue_ = {};
}

void DistanceLabelIndex::ProcessLandmark(NodeId landmark, bool forward) {
  // Backward BFS extends L_out of nodes reaching the landmark; forward
  // BFS extends L_in of nodes the landmark reaches. Queries during
  // construction meet at hubs recorded for the opposite direction.
  auto& meet_labels =
      forward ? build_out_labels_[landmark] : build_in_labels_[landmark];
  auto& grow = forward ? build_in_labels_ : build_out_labels_;

  std::vector<NodeId> touched_hubs;
  for (const Label& label : meet_labels) {
    hub_dist_[label.node] = label.dist;
    touched_hubs.push_back(label.node);
  }
  hub_dist_[landmark] = 0;
  touched_hubs.push_back(landmark);

  auto query = [&](NodeId x) -> uint32_t {
    uint32_t dmin = kInf;
    for (const Label& label : grow[x]) {
      uint32_t hd = hub_dist_[label.node];
      if (hd != kInf) dmin = std::min(dmin, hd + label.dist);
    }
    return dmin;
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue_[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    auto nbrs = forward ? g_->OutNeighbors(u) : g_->InNeighbors(u);
    for (NodeId x : nbrs) {
      if (x == landmark || in_queue_[x]) continue;
      if (len < query(x)) {
        grow[x].push_back(Label{landmark, len});
        if (len < max_hops_) {
          in_queue_[x] = 1;
          queue.emplace_back(x, len);
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist_[w] = kInf;
  for (const auto& [node, len] : queue) in_queue_[node] = 0;
}

uint32_t DistanceLabelIndex::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto outs = out_labels(u);
  const auto ins = in_labels(v);
  uint32_t dmin = kInf;
  size_t i = 0, j = 0;
  while (i < outs.size() && j < ins.size()) {
    if (outs[i].node < ins[j].node) {
      ++i;
    } else if (outs[i].node > ins[j].node) {
      ++j;
    } else {
      dmin = std::min(dmin, outs[i].dist + ins[j].dist);
      ++i;
      ++j;
    }
  }
  for (const Label& label : outs) {
    if (label.node == v) dmin = std::min(dmin, label.dist);
  }
  for (const Label& label : ins) {
    if (label.node == u) dmin = std::min(dmin, label.dist);
  }
  return dmin > max_hops_ ? kInf : dmin;
}

ReachQueryResult DistanceLabelIndex::Query(NodeId u, NodeId v) const {
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  uint32_t duv = Distance(u, v);
  if (duv == kInf) return result;
  result.distance = duv;
  // Theorem 1: reconstruct F_uv with one distance query per followee.
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || Distance(t, v) == duv - 1) result.followees.push_back(t);
  }
  return result;
}

ReachCountResult DistanceLabelIndex::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  ReachCountResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  uint32_t duv = Distance(u, v);
  if (duv == kInf) {
    sm.unreachable->Increment();
    return result;
  }
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || Distance(t, v) == duv - 1) ++result.followee_count;
  }
  return result;
}

double DistanceLabelIndex::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double DistanceLabelIndex::ScoreOnly(NodeId u, NodeId v) const {
  const ReachCountResult r = CountQuery(u, v);
  return WeightedScoreFromCount(r.distance, r.followee_count,
                                g_->OutDegree(u), u == v);
}

uint64_t DistanceLabelIndex::TotalLabelEntries() const {
  return in_entries_.size() + out_entries_.size();
}

MutationResult DistanceLabelIndex::OnGraphMutation(
    const MutationContext& ctx) {
  if (ctx.delta.op == graph::EdgeDelta::Op::kErase) {
    *this = Build(g_, max_hops_);
    return MutationResult::kRebuilt;
  }
  PatchInsertedEdge(ctx);
  return MutationResult::kPatched;
}

void DistanceLabelIndex::PatchInsertedEdge(const MutationContext& ctx) {
  const NodeId u = ctx.delta.u;
  const std::vector<uint32_t>& to_u = *ctx.dist_to_u;      // d(a, u)
  const std::vector<uint32_t>& from_v = *ctx.dist_from_v;  // d(v, b)
  const uint32_t n = g_->num_nodes();

  // Unpack the arenas into the build vectors; the arenas stay intact
  // until FinalizeArenas so Distance() keeps answering pre-insert.
  build_in_labels_.assign(n, {});
  build_out_labels_.assign(n, {});
  for (NodeId x = 0; x < n; ++x) {
    const auto ins = in_labels(x);
    build_in_labels_[x].assign(ins.begin(), ins.end());
    const auto outs = out_labels(x);
    build_out_labels_[x].assign(outs.begin(), outs.end());
  }

  auto through = [&](NodeId s, NodeId t) -> uint32_t {
    if (to_u[s] == kInf || from_v[t] == kInf) return kInf;
    const uint32_t c = to_u[s] + 1 + from_v[t];
    return c > max_hops_ ? kInf : c;
  };

  // Closed-form fix of existing labels: d' = min(d, d(s,u)+1+d(v,h)).
  for (NodeId s = 0; s < n; ++s) {
    if (to_u[s] == kInf) continue;
    for (Label& label : build_out_labels_[s]) {
      const uint32_t cand = through(s, label.node);
      if (cand < label.dist) label.dist = cand;
    }
  }
  for (NodeId t = 0; t < n; ++t) {
    if (from_v[t] == kInf) continue;
    for (Label& label : build_in_labels_[t]) {
      const uint32_t cand = through(label.node, t);
      if (cand < label.dist) label.dist = cand;
    }
  }

  // Cover restoration: hub u on both sides of the new edge. Pairs (u, b)
  // are answered by the degenerate source-hub scan of Distance(), so no
  // hub-v labels are needed in the distance-only index.
  auto upsert = [](std::vector<Label>& labels, NodeId hub, uint32_t dist) {
    auto it = std::lower_bound(
        labels.begin(), labels.end(), hub,
        [](const Label& l, NodeId x) { return l.node < x; });
    if (it != labels.end() && it->node == hub) {
      it->dist = std::min(it->dist, dist);
    } else {
      labels.insert(it, Label{hub, dist});
    }
  };
  for (NodeId a = 0; a < n; ++a) {
    if (a != u && to_u[a] != kInf) upsert(build_out_labels_[a], u, to_u[a]);
  }
  for (NodeId b = 0; b < n; ++b) {
    if (b == u || from_v[b] == kInf) continue;
    const uint32_t through_b =
        from_v[b] + 1 > max_hops_ ? kInf : from_v[b] + 1;
    const uint32_t dub = std::min(Distance(u, b), through_b);
    if (dub <= max_hops_) upsert(build_in_labels_[b], u, dub);
  }

  FinalizeArenas();
  mapping_.reset();
}

uint64_t DistanceLabelIndex::IndexSizeBytes() const {
  return TotalLabelEntries() * sizeof(Label) +
         (in_offsets_.size() + out_offsets_.size()) * sizeof(uint64_t);
}

namespace {

constexpr uint32_t kDliMagic = 0x4d454c44;  // "MELD"
constexpr uint32_t kDliVersion = 1;

bool ValidOffsets(std::span<const uint64_t> offsets, uint64_t expect_size,
                  uint64_t arena_size) {
  if (offsets.size() != expect_size) return false;
  if (offsets.front() != 0 || offsets.back() != arena_size) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Status DistanceLabelIndex::Save(const std::string& path) const {
  const Mel3BlockDesc blocks[] = {
      Mel3BlockDesc::Of(Mel3BlockKind::kInOffsets, in_offsets_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kInEntries, in_entries_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kOutOffsets, out_offsets_.view()),
      Mel3BlockDesc::Of(Mel3BlockKind::kOutEntries, out_entries_.view()),
  };
  return WriteMel3File(path, kDliMagic, kDliVersion,
                       static_cast<uint32_t>(g_->num_nodes()), max_hops_,
                       blocks);
}

Status DistanceLabelIndex::ValidateOffsets() const {
  const uint64_t n = g_->num_nodes();
  if (!ValidOffsets(in_offsets_.view(), n + 1, in_entries_.size()) ||
      !ValidOffsets(out_offsets_.view(), n + 1, out_entries_.size())) {
    return Status::InvalidArgument("corrupt arena offsets");
  }
  return Status::OK();
}

Status DistanceLabelIndex::ValidateNodeIds() const {
  const uint32_t n = g_->num_nodes();
  for (const Label& label : in_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  for (const Label& label : out_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  return Status::OK();
}

Result<DistanceLabelIndex> DistanceLabelIndex::Load(
    const std::string& path, const graph::DirectedGraph* g) {
  uint32_t magic = 0;
  {
    BinaryReader sniff(path);
    magic = sniff.ReadU32();
    if (!sniff.status().ok()) return sniff.status();
  }
  if (magic == kMel3Magic) {
    util::MmapLoadOptions opts;
    opts.map.advice = util::MmapFile::Advice::kSequential;
    opts.verify_checksums = true;
    auto mapped = LoadMapped(path, g, opts);
    if (!mapped.ok()) return mapped.status();
    DistanceLabelIndex index = std::move(mapped).value();
    index.MaterializeOwned();
    return index;
  }
  if (magic != kDliMagic) {
    return Status::InvalidArgument("not a distance-label index file");
  }
  // Legacy "MELD" copying load (pre-MEL3 wire format).
  BinaryReader reader(path);
  reader.ReadU32();  // magic, already sniffed
  uint32_t version = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  uint32_t max_hops = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (version != kDliVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (n != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }
  DistanceLabelIndex index(g, max_hops);
  std::vector<uint64_t> in_offsets, out_offsets;
  std::vector<Label> in_entries, out_entries;
  reader.ReadVectorInto(&in_offsets);
  reader.ReadVectorInto(&in_entries);
  reader.ReadVectorInto(&out_offsets);
  reader.ReadVectorInto(&out_entries);
  if (!reader.status().ok()) return reader.status();
  index.in_offsets_.Own(std::move(in_offsets));
  index.in_entries_.Own(std::move(in_entries));
  index.out_offsets_.Own(std::move(out_offsets));
  index.out_entries_.Own(std::move(out_entries));
  Status valid = index.ValidateOffsets();
  if (!valid.ok()) return valid;
  valid = index.ValidateNodeIds();
  if (!valid.ok()) return valid;
  PublishMmapLoadMetrics(kLoadModeCopied, 0,
                         util::MmapFile::Advice::kNormal);
  return index;
}

Result<DistanceLabelIndex> DistanceLabelIndex::LoadMapped(
    const std::string& path, const graph::DirectedGraph* g,
    const util::MmapLoadOptions& opts) {
  auto file = util::MmapFile::Open(path, opts.map);
  if (!file.ok()) return file.status();
  auto shared = std::make_shared<const util::MmapFile>(
      std::move(file).value());
  auto parsed = Mel3View::Parse(shared, kDliMagic);
  if (!parsed.ok()) return parsed.status();
  const Mel3View& view = parsed.value();
  if (view.header().inner_version != kDliVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (view.header().num_nodes != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }

  auto in_offsets = view.Block<uint64_t>(Mel3BlockKind::kInOffsets);
  auto in_entries = view.Block<Label>(Mel3BlockKind::kInEntries);
  auto out_offsets = view.Block<uint64_t>(Mel3BlockKind::kOutOffsets);
  auto out_entries = view.Block<Label>(Mel3BlockKind::kOutEntries);
  for (const Status& s :
       {in_offsets.status(), in_entries.status(), out_offsets.status(),
        out_entries.status()}) {
    if (!s.ok()) return s;
  }

  DistanceLabelIndex index(g, view.header().max_hops);
  index.in_offsets_.BindView(in_offsets.value());
  index.in_entries_.BindView(in_entries.value());
  index.out_offsets_.BindView(out_offsets.value());
  index.out_entries_.BindView(out_entries.value());
  index.mapping_ = shared;

  Status valid = index.ValidateOffsets();
  if (!valid.ok()) return valid;
  if (opts.verify_checksums) {
    valid = view.VerifyBlockChecksums();
    if (!valid.ok()) return valid;
    valid = index.ValidateNodeIds();
    if (!valid.ok()) return valid;
  }
  PublishMmapLoadMetrics(kLoadModeMapped, shared->size(),
                         opts.map.advice);
  return index;
}

void DistanceLabelIndex::MaterializeOwned() {
  auto copy = [](auto& arena) {
    using T = std::remove_const_t<
        typename decltype(arena.view())::element_type>;
    if (!arena.owns_storage()) {
      arena.Own(std::vector<T>(arena.begin(), arena.end()));
    }
  };
  copy(in_offsets_);
  copy(in_entries_);
  copy(out_offsets_);
  copy(out_entries_);
  mapping_.reset();
  PublishMmapLoadMetrics(kLoadModeCopied, 0,
                         util::MmapFile::Advice::kNormal);
}

}  // namespace mel::reach

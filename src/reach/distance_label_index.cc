#include "reach/distance_label_index.h"

#include <algorithm>

#include "graph/stats.h"
#include "reach/reach_metrics.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace mel::reach {

namespace {
constexpr uint32_t kInf = kUnreachableDistance;
}  // namespace

DistanceLabelIndex::DistanceLabelIndex(const graph::DirectedGraph* g,
                                       uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {
  build_in_labels_.resize(g->num_nodes());
  build_out_labels_.resize(g->num_nodes());
  hub_dist_.assign(g->num_nodes(), kInf);
  in_queue_.assign(g->num_nodes(), 0);
}

DistanceLabelIndex DistanceLabelIndex::Build(const graph::DirectedGraph* g,
                                             uint32_t max_hops) {
  DistanceLabelIndex index(g, max_hops);
  const auto degrees = graph::TotalDegrees(*g);
  for (NodeId landmark : graph::NodesByDegreeDescending(*g, degrees)) {
    index.ProcessLandmark(landmark, /*forward=*/false);
    index.ProcessLandmark(landmark, /*forward=*/true);
  }
  for (auto& labels : index.build_in_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  for (auto& labels : index.build_out_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  index.FinalizeArenas();
  return index;
}

void DistanceLabelIndex::FinalizeArenas() {
  const uint32_t n = g_->num_nodes();
  in_offsets_.assign(n + 1, 0);
  out_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    in_offsets_[v + 1] = in_offsets_[v] + build_in_labels_[v].size();
    out_offsets_[v + 1] = out_offsets_[v] + build_out_labels_[v].size();
  }
  in_entries_.resize(in_offsets_[n]);
  out_entries_.resize(out_offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::copy(build_in_labels_[v].begin(), build_in_labels_[v].end(),
              in_entries_.begin() + static_cast<ptrdiff_t>(in_offsets_[v]));
    std::copy(build_out_labels_[v].begin(), build_out_labels_[v].end(),
              out_entries_.begin() + static_cast<ptrdiff_t>(out_offsets_[v]));
  }
  build_in_labels_ = {};
  build_out_labels_ = {};
  hub_dist_ = {};
  in_queue_ = {};
}

void DistanceLabelIndex::ProcessLandmark(NodeId landmark, bool forward) {
  // Backward BFS extends L_out of nodes reaching the landmark; forward
  // BFS extends L_in of nodes the landmark reaches. Queries during
  // construction meet at hubs recorded for the opposite direction.
  auto& meet_labels =
      forward ? build_out_labels_[landmark] : build_in_labels_[landmark];
  auto& grow = forward ? build_in_labels_ : build_out_labels_;

  std::vector<NodeId> touched_hubs;
  for (const Label& label : meet_labels) {
    hub_dist_[label.node] = label.dist;
    touched_hubs.push_back(label.node);
  }
  hub_dist_[landmark] = 0;
  touched_hubs.push_back(landmark);

  auto query = [&](NodeId x) -> uint32_t {
    uint32_t dmin = kInf;
    for (const Label& label : grow[x]) {
      uint32_t hd = hub_dist_[label.node];
      if (hd != kInf) dmin = std::min(dmin, hd + label.dist);
    }
    return dmin;
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue_[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    auto nbrs = forward ? g_->OutNeighbors(u) : g_->InNeighbors(u);
    for (NodeId x : nbrs) {
      if (x == landmark || in_queue_[x]) continue;
      if (len < query(x)) {
        grow[x].push_back(Label{landmark, len});
        if (len < max_hops_) {
          in_queue_[x] = 1;
          queue.emplace_back(x, len);
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist_[w] = kInf;
  for (const auto& [node, len] : queue) in_queue_[node] = 0;
}

uint32_t DistanceLabelIndex::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto outs = out_labels(u);
  const auto ins = in_labels(v);
  uint32_t dmin = kInf;
  size_t i = 0, j = 0;
  while (i < outs.size() && j < ins.size()) {
    if (outs[i].node < ins[j].node) {
      ++i;
    } else if (outs[i].node > ins[j].node) {
      ++j;
    } else {
      dmin = std::min(dmin, outs[i].dist + ins[j].dist);
      ++i;
      ++j;
    }
  }
  for (const Label& label : outs) {
    if (label.node == v) dmin = std::min(dmin, label.dist);
  }
  for (const Label& label : ins) {
    if (label.node == u) dmin = std::min(dmin, label.dist);
  }
  return dmin > max_hops_ ? kInf : dmin;
}

ReachQueryResult DistanceLabelIndex::Query(NodeId u, NodeId v) const {
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  uint32_t duv = Distance(u, v);
  if (duv == kInf) return result;
  result.distance = duv;
  // Theorem 1: reconstruct F_uv with one distance query per followee.
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || Distance(t, v) == duv - 1) result.followees.push_back(t);
  }
  return result;
}

ReachCountResult DistanceLabelIndex::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  ReachCountResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  uint32_t duv = Distance(u, v);
  if (duv == kInf) {
    sm.unreachable->Increment();
    return result;
  }
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || Distance(t, v) == duv - 1) ++result.followee_count;
  }
  return result;
}

double DistanceLabelIndex::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double DistanceLabelIndex::ScoreOnly(NodeId u, NodeId v) const {
  const ReachCountResult r = CountQuery(u, v);
  return WeightedScoreFromCount(r.distance, r.followee_count,
                                g_->OutDegree(u), u == v);
}

uint64_t DistanceLabelIndex::TotalLabelEntries() const {
  return in_entries_.size() + out_entries_.size();
}

uint64_t DistanceLabelIndex::IndexSizeBytes() const {
  return TotalLabelEntries() * sizeof(Label) +
         (in_offsets_.size() + out_offsets_.size()) * sizeof(uint64_t);
}

namespace {

constexpr uint32_t kDliMagic = 0x4d454c44;  // "MELD"
constexpr uint32_t kDliVersion = 1;

bool ValidOffsets(const std::vector<uint64_t>& offsets, uint64_t expect_size,
                  uint64_t arena_size) {
  if (offsets.size() != expect_size) return false;
  if (offsets.front() != 0 || offsets.back() != arena_size) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Status DistanceLabelIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU32(kDliMagic);
  writer.WriteU32(kDliVersion);
  writer.WriteU32(static_cast<uint32_t>(g_->num_nodes()));
  writer.WriteU32(max_hops_);
  writer.WriteVector(in_offsets_);
  writer.WriteVector(in_entries_);
  writer.WriteVector(out_offsets_);
  writer.WriteVector(out_entries_);
  return writer.Finish();
}

Result<DistanceLabelIndex> DistanceLabelIndex::Load(
    const std::string& path, const graph::DirectedGraph* g) {
  BinaryReader reader(path);
  uint32_t magic = reader.ReadU32();
  uint32_t version = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  uint32_t max_hops = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kDliMagic) {
    return Status::InvalidArgument("not a distance-label index file");
  }
  if (version != kDliVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  if (n != g->num_nodes()) {
    return Status::FailedPrecondition(
        "index was built for a graph with a different node count");
  }
  DistanceLabelIndex index(g, max_hops);
  index.build_in_labels_ = {};
  index.build_out_labels_ = {};
  index.hub_dist_ = {};
  index.in_queue_ = {};
  reader.ReadVectorInto(&index.in_offsets_);
  reader.ReadVectorInto(&index.in_entries_);
  reader.ReadVectorInto(&index.out_offsets_);
  reader.ReadVectorInto(&index.out_entries_);
  if (!reader.status().ok()) return reader.status();
  if (!ValidOffsets(index.in_offsets_, uint64_t{n} + 1,
                    index.in_entries_.size()) ||
      !ValidOffsets(index.out_offsets_, uint64_t{n} + 1,
                    index.out_entries_.size())) {
    return Status::InvalidArgument("corrupt arena offsets");
  }
  for (const Label& label : index.in_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  for (const Label& label : index.out_entries_) {
    if (label.node >= n) {
      return Status::InvalidArgument("corrupt label node id");
    }
  }
  return index;
}

}  // namespace mel::reach

#include "reach/distance_label_index.h"

#include <algorithm>

#include "graph/stats.h"
#include "util/logging.h"

namespace mel::reach {

namespace {
constexpr uint32_t kInf = kUnreachableDistance;
}  // namespace

DistanceLabelIndex::DistanceLabelIndex(const graph::DirectedGraph* g,
                                       uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {
  in_labels_.resize(g->num_nodes());
  out_labels_.resize(g->num_nodes());
  hub_dist_.assign(g->num_nodes(), kInf);
  in_queue_.assign(g->num_nodes(), 0);
}

DistanceLabelIndex DistanceLabelIndex::Build(const graph::DirectedGraph* g,
                                             uint32_t max_hops) {
  DistanceLabelIndex index(g, max_hops);
  const auto degrees = graph::TotalDegrees(*g);
  for (NodeId landmark : graph::NodesByDegreeDescending(*g, degrees)) {
    index.ProcessLandmark(landmark, /*forward=*/false);
    index.ProcessLandmark(landmark, /*forward=*/true);
  }
  for (auto& labels : index.in_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  for (auto& labels : index.out_labels_) {
    std::sort(labels.begin(), labels.end(),
              [](const Label& a, const Label& b) { return a.node < b.node; });
  }
  index.hub_dist_.clear();
  index.hub_dist_.shrink_to_fit();
  index.in_queue_.clear();
  index.in_queue_.shrink_to_fit();
  return index;
}

void DistanceLabelIndex::ProcessLandmark(NodeId landmark, bool forward) {
  // Backward BFS extends L_out of nodes reaching the landmark; forward
  // BFS extends L_in of nodes the landmark reaches. Queries during
  // construction meet at hubs recorded for the opposite direction.
  auto& meet_labels = forward ? out_labels_[landmark] : in_labels_[landmark];
  auto& grow = forward ? in_labels_ : out_labels_;

  std::vector<NodeId> touched_hubs;
  for (const Label& label : meet_labels) {
    hub_dist_[label.node] = label.dist;
    touched_hubs.push_back(label.node);
  }
  hub_dist_[landmark] = 0;
  touched_hubs.push_back(landmark);

  auto query = [&](NodeId x) -> uint32_t {
    uint32_t dmin = kInf;
    for (const Label& label : grow[x]) {
      uint32_t hd = hub_dist_[label.node];
      if (hd != kInf) dmin = std::min(dmin, hd + label.dist);
    }
    return dmin;
  };

  std::vector<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(landmark, 0);
  in_queue_[landmark] = 1;
  size_t head = 0;
  while (head < queue.size()) {
    auto [u, len_u] = queue[head++];
    if (len_u >= max_hops_) continue;
    const uint32_t len = len_u + 1;
    auto nbrs = forward ? g_->OutNeighbors(u) : g_->InNeighbors(u);
    for (NodeId x : nbrs) {
      if (x == landmark || in_queue_[x]) continue;
      if (len < query(x)) {
        grow[x].push_back(Label{landmark, len});
        if (len < max_hops_) {
          in_queue_[x] = 1;
          queue.emplace_back(x, len);
        }
      }
    }
  }

  for (NodeId w : touched_hubs) hub_dist_[w] = kInf;
  for (const auto& [node, len] : queue) in_queue_[node] = 0;
}

uint32_t DistanceLabelIndex::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto& outs = out_labels_[u];
  const auto& ins = in_labels_[v];
  uint32_t dmin = kInf;
  size_t i = 0, j = 0;
  while (i < outs.size() && j < ins.size()) {
    if (outs[i].node < ins[j].node) {
      ++i;
    } else if (outs[i].node > ins[j].node) {
      ++j;
    } else {
      dmin = std::min(dmin, outs[i].dist + ins[j].dist);
      ++i;
      ++j;
    }
  }
  for (const Label& label : outs) {
    if (label.node == v) dmin = std::min(dmin, label.dist);
  }
  for (const Label& label : ins) {
    if (label.node == u) dmin = std::min(dmin, label.dist);
  }
  return dmin > max_hops_ ? kInf : dmin;
}

ReachQueryResult DistanceLabelIndex::Query(NodeId u, NodeId v) const {
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  uint32_t duv = Distance(u, v);
  if (duv == kInf) return result;
  result.distance = duv;
  // Theorem 1: reconstruct F_uv with one distance query per followee.
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || Distance(t, v) == duv - 1) result.followees.push_back(t);
  }
  return result;
}

double DistanceLabelIndex::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

uint64_t DistanceLabelIndex::TotalLabelEntries() const {
  uint64_t total = 0;
  for (const auto& labels : in_labels_) total += labels.size();
  for (const auto& labels : out_labels_) total += labels.size();
  return total;
}

uint64_t DistanceLabelIndex::IndexSizeBytes() const {
  return TotalLabelEntries() * sizeof(Label);
}

}  // namespace mel::reach

#ifndef MEL_REACH_REACH_MAINTAINER_H_
#define MEL_REACH_REACH_MAINTAINER_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/mutation.h"
#include "reach/weighted_reachability.h"
#include "util/thread_pool.h"

namespace mel::reach {

/// \brief Orchestrates incremental maintenance of reachability indexes
/// over a mutable follow graph.
///
/// One maintainer owns the mutation order for a graph: ApplyDelta
/// mutates the graph FIRST, computes the two bounded BFS frontiers every
/// patch needs (d(*, u) backward, d(v, *) forward — valid for insert and
/// erase alike, since neither family of paths can route through the
/// mutated edge), then offers the delta to every registered index
/// through WeightedReachability::OnGraphMutation in registration order.
/// Register a CachedReachability AFTER the backend it wraps, so the
/// backend is patched before the cache invalidates against it.
///
/// Thread safety: ApplyDelta must be externally serialized against both
/// other ApplyDelta calls and all index/graph readers (the serving layer
/// provides this with its epoch barrier; tests use a writer lock).
/// Publishes graph.mutation.* and reach.patch.* metrics.
class ReachMaintainer {
 public:
  /// What one ApplyDelta did. `applied` is false when the delta was a
  /// no-op (self-loop, duplicate insert, missing erase, out-of-range);
  /// in that case no index was touched and `results` is empty.
  struct ApplyResult {
    bool applied = false;
    std::vector<MutationResult> results;  // one per registered index
  };

  /// The graph is mutated in place and must outlive the maintainer;
  /// max_hops is the hop bound H shared by every registered index.
  /// `pool` (nullptr = the shared pool) is forwarded to index rebuilds.
  ReachMaintainer(graph::DirectedGraph* g, uint32_t max_hops,
                  util::ThreadPool* pool = nullptr);

  /// Registers an index (not owned; must outlive the maintainer). Hooks
  /// fire in registration order.
  void Register(WeightedReachability* index);

  /// Applies one edge delta: graph splice, shared BFS, index hooks.
  ApplyResult ApplyDelta(const graph::EdgeDelta& delta);

  const graph::DirectedGraph& graph() const { return *g_; }
  uint32_t max_hops() const { return max_hops_; }
  size_t num_registered() const { return indexes_.size(); }

 private:
  graph::DirectedGraph* g_;
  uint32_t max_hops_;
  util::ThreadPool* pool_;
  std::vector<WeightedReachability*> indexes_;
  // Reused BFS frontier buffers (d(a, u) / d(v, b), kUnreachableDistance
  // sentinel), rebuilt by each ApplyDelta.
  std::vector<uint32_t> dist_to_u_;
  std::vector<uint32_t> dist_from_v_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_REACH_MAINTAINER_H_

#ifndef MEL_REACH_TRANSITIVE_CLOSURE_H_
#define MEL_REACH_TRANSITIVE_CLOSURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mel::reach {

/// \brief Extended transitive closure for weighted reachability (Sec. 4.1.1).
///
/// Materializes the full |V| x |V| weighted-reachability matrix R (plus a
/// byte matrix of shortest-path distances), answering queries in O(1).
/// This is the paper's "unlimited storage" framework: fastest queries,
/// quadratic memory.
///
/// Two constructions are provided:
///  * kNaive       — one bounded backward BFS per node pair, the
///                    O(|V|^2 |E|) strawman of Fig. 5(b);
///  * kIncremental — Algorithm 1: level-synchronous dynamic programming
///                    over hop counts, O(H * |V| * |E|) in the worst case
///                    and far faster in practice.
class TransitiveClosureIndex : public WeightedReachability {
 public:
  enum class Construction { kNaive, kIncremental };

  /// Builds the index. The graph must outlive the index. Memory use is
  /// 5 bytes per node pair; callers are responsible for keeping |V| within
  /// budget (the Table-5 benchmark deliberately drops TC for large graphs,
  /// as the paper does).
  ///
  /// Construction runs on `pool` (nullptr = the process-wide shared
  /// pool). Both modes produce output bit-identical to a 1-thread build:
  /// kNaive is embarrassingly parallel across target nodes; kIncremental
  /// parallelizes across source rows within each hop level against a
  /// snapshot of the previous levels, so every cell's inputs are fixed
  /// before the level starts.
  static TransitiveClosureIndex Build(const graph::DirectedGraph* g,
                                      uint32_t max_hops, Construction mode,
                                      util::ThreadPool* pool = nullptr);

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  /// Theorem-1 followee count from the distance matrix — no
  /// materialization, no sort.
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  /// The score matrix is already count-free, so this is the same O(1)
  /// lookup as Score (they return identical values by construction).
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override;
  const char* Name() const override { return "transitive-closure"; }

  /// Shortest-path distance (kUnreachableDistance beyond H hops).
  uint32_t Distance(NodeId u, NodeId v) const;

  /// \brief Online maintenance: inserts the follow edge u -> v (a user
  /// subscribing to another) and repairs the affected distances and
  /// weighted-reachability scores in place, without a rebuild.
  ///
  /// Distances can only shrink on insertion; the repair visits the
  /// O(|A| * |B|) pairs that route through the new edge (A = nodes
  /// reaching u, B = nodes reachable from v) plus the followers of nodes
  /// whose distance changed, whose followee sets (Theorem 1) may have
  /// gained members. Inserted edges are tracked in an overlay so the
  /// underlying immutable graph is never touched.
  ///
  /// Returns false (and changes nothing) when the edge already exists or
  /// is a self-loop.
  bool InsertEdge(NodeId u, NodeId v);

  /// \brief Mutate-or-invalidate contract: patches the matrix after the
  /// underlying graph itself was mutated (insert or erase).
  ///
  /// Insertions reuse the InsertEdge repair; erasures re-run one bounded
  /// forward BFS per affected source row (a row is affected only when
  /// some shortest path could have routed through the erased edge) and
  /// repair the scores of changed pairs, their sources' followers, and
  /// the whole live row of u (whose out-degree shrank). Both directions
  /// return kPatched. Must not be mixed with the overlay API: requires
  /// that no overlay edges have been inserted.
  MutationResult OnGraphMutation(const MutationContext& ctx) override;

  /// Number of followees of u including overlay edges.
  uint32_t CurrentOutDegree(NodeId u) const;

  /// Persists the index (distances, scores, overlay edges) to disk.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save. The graph must be the
  /// same one the index was built from (node count is validated).
  static Result<TransitiveClosureIndex> Load(const std::string& path,
                                             const graph::DirectedGraph* g);

 private:
  TransitiveClosureIndex(const graph::DirectedGraph* g, uint32_t max_hops);

  void BuildNaive(util::ThreadPool* pool);
  void BuildIncremental(util::ThreadPool* pool);

  /// Recomputes score_[a][b] from the distance matrix (Theorem 1).
  void RecomputeScore(NodeId a, NodeId b);

  /// Shared repair body of InsertEdge / OnGraphMutation(kInsert); the
  /// adjacency (graph or overlay) must already contain u -> v while the
  /// distance matrix still predates it.
  void PatchInsertedEdge(NodeId u, NodeId v);

  /// Repair body of OnGraphMutation(kErase): the graph no longer has
  /// u -> v, the matrix still does.
  void PatchErasedEdge(NodeId u, NodeId v);

  /// Invokes fn(t) for every followee t of a (graph + overlay).
  template <typename Fn>
  void ForEachFollowee(NodeId a, Fn fn) const;

  /// Invokes fn(a) for every follower a of t (graph + overlay).
  template <typename Fn>
  void ForEachFollower(NodeId t, Fn fn) const;

  size_t Cell(NodeId u, NodeId v) const {
    return static_cast<size_t>(u) * n_ + v;
  }

  const graph::DirectedGraph* g_;
  uint32_t n_;
  uint32_t max_hops_;
  std::vector<float> score_;  // R(u, v); 0 when unreachable within H
  std::vector<uint8_t> dist_;  // shortest-path hops; 0 means unreachable
  // Edges inserted after Build, forward and reverse.
  std::vector<std::vector<NodeId>> overlay_out_;
  std::vector<std::vector<NodeId>> overlay_in_;
  uint64_t overlay_edge_count_ = 0;
};

}  // namespace mel::reach

#endif  // MEL_REACH_TRANSITIVE_CLOSURE_H_

#ifndef MEL_REACH_NAIVE_REACHABILITY_H_
#define MEL_REACH_NAIVE_REACHABILITY_H_

#include <memory>

#include "graph/bfs.h"
#include "graph/directed_graph.h"
#include "reach/weighted_reachability.h"

namespace mel::reach {

/// \brief Index-free baseline: answers each weighted reachability query
/// with one backward BFS from the target (bounded by H hops).
///
/// A single backward BFS yields both d_uv and the distances d_tv of every
/// followee t of u, which is all Eq. 4 needs:
///   F_uv = { t in F_u : d_tv = d_uv - 1 }   (Theorem 1).
///
/// O(|E|) per query — the cost the paper's indexes exist to avoid.
///
/// Queries are safe from any number of threads concurrently: BFS scratch
/// is per-thread (BfsScratch::ThreadLocal), the object itself is
/// stateless.
class NaiveReachability : public WeightedReachability {
 public:
  /// The graph must outlive this object.
  NaiveReachability(const graph::DirectedGraph* g, uint32_t max_hops);

  double Score(NodeId u, NodeId v) const override;
  ReachQueryResult Query(NodeId u, NodeId v) const override;
  ReachCountResult CountQuery(NodeId u, NodeId v) const override;
  double ScoreOnly(NodeId u, NodeId v) const override;
  uint64_t IndexSizeBytes() const override { return 0; }
  const char* Name() const override { return "naive-bfs"; }

 private:
  const graph::DirectedGraph* g_;
  uint32_t max_hops_;
};

}  // namespace mel::reach

#endif  // MEL_REACH_NAIVE_REACHABILITY_H_

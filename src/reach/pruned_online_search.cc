#include "reach/pruned_online_search.h"

#include <algorithm>
#include <numeric>

#include "graph/components.h"
#include "reach/reach_metrics.h"
#include "util/logging.h"

namespace mel::reach {

PrunedOnlineSearch::PrunedOnlineSearch(const graph::DirectedGraph* g,
                                       uint32_t max_hops,
                                       uint32_t num_intervals)
    : g_(g), max_hops_(max_hops), num_intervals_(num_intervals) {}

PrunedOnlineSearch PrunedOnlineSearch::Build(const graph::DirectedGraph* g,
                                             uint32_t max_hops,
                                             uint32_t num_intervals,
                                             uint64_t seed) {
  MEL_CHECK(num_intervals > 0);
  PrunedOnlineSearch index(g, max_hops, num_intervals);
  index.seed_ = seed;

  // Condense to the SCC DAG.
  auto scc = graph::StronglyConnectedComponents(*g);
  index.component_ = std::move(scc.component);
  index.num_components_ = scc.num_components;
  index.dag_out_.resize(index.num_components_);
  for (graph::NodeId u = 0; u < g->num_nodes(); ++u) {
    for (graph::NodeId v : g->OutNeighbors(u)) {
      uint32_t cu = index.component_[u];
      uint32_t cv = index.component_[v];
      if (cu != cv) index.dag_out_[cu].push_back(cv);
    }
  }
  for (auto& out : index.dag_out_) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  index.BuildIntervals(seed);
  return index;
}

void PrunedOnlineSearch::BuildIntervals(uint64_t seed) {
  const uint32_t n = num_components_;
  intervals_.assign(static_cast<size_t>(num_intervals_) * n,
                    Interval{0, 0});
  Rng rng(seed);

  // DAG in-degrees to find the roots once.
  std::vector<uint32_t> in_degree(n, 0);
  for (uint32_t c = 0; c < n; ++c) {
    for (uint32_t d : dag_out_[c]) ++in_degree[d];
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (uint32_t k = 0; k < num_intervals_; ++k) {
    Interval* labels = intervals_.data() + static_cast<size_t>(k) * n;
    std::vector<uint8_t> visited(n, 0);
    uint32_t rank = 0;

    // Randomized root and child visiting order per labeling.
    rng.Shuffle(&order);

    // Iterative post-order DFS.
    struct Frame {
      uint32_t comp;
      uint32_t next_child;
      std::vector<uint32_t> children;  // shuffled copy
    };
    std::vector<Frame> stack;
    auto visit_tree = [&](uint32_t root) {
      if (visited[root]) return;
      visited[root] = 1;
      stack.push_back(Frame{root, 0, dag_out_[root]});
      rng.Shuffle(&stack.back().children);
      labels[root].low = static_cast<uint32_t>(-1);
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next_child < frame.children.size()) {
          uint32_t child = frame.children[frame.next_child++];
          if (!visited[child]) {
            visited[child] = 1;
            stack.push_back(Frame{child, 0, dag_out_[child]});
            rng.Shuffle(&stack.back().children);
            labels[child].low = static_cast<uint32_t>(-1);
          }
          // Visited children (cross/forward edges in the DAG) are already
          // finished; their final low is folded in at the parent's pop.
        } else {
          uint32_t c = frame.comp;
          uint32_t my_rank = rank++;
          uint32_t low = my_rank;
          for (uint32_t child : frame.children) {
            low = std::min(low, labels[child].low);
          }
          labels[c].low = low;
          labels[c].high = my_rank;
          stack.pop_back();
        }
      }
    };
    // Roots first (in-degree 0), then any leftovers (cycle-free by SCC
    // construction, so leftovers only occur when every source was
    // shuffled behind — harmless).
    for (uint32_t c : order) {
      if (in_degree[c] == 0) visit_tree(c);
    }
    for (uint32_t c : order) visit_tree(c);
  }
}

MutationResult PrunedOnlineSearch::OnGraphMutation(const MutationContext&) {
  // The SCC condensation and post-order intervals are global properties
  // of the edge set; a single edge can merge or split components, so
  // both directions rebuild. The stored seed keeps the rebuilt interval
  // labels bit-identical to a fresh Build on the same graph.
  *this = Build(g_, max_hops_, num_intervals_, seed_);
  return MutationResult::kRebuilt;
}

bool PrunedOnlineSearch::DefinitelyUnreachable(NodeId u, NodeId v) const {
  uint32_t cu = component_[u];
  uint32_t cv = component_[v];
  if (cu == cv) return false;
  const uint32_t n = num_components_;
  for (uint32_t k = 0; k < num_intervals_; ++k) {
    const Interval& a = intervals_[static_cast<size_t>(k) * n + cu];
    const Interval& b = intervals_[static_cast<size_t>(k) * n + cv];
    // GRAIL: reach(u, v) implies interval(v) inside interval(u).
    if (b.low < a.low || b.high > a.high) return true;
  }
  return false;
}

ReachQueryResult PrunedOnlineSearch::Query(NodeId u, NodeId v) const {
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  if (DefinitelyUnreachable(u, v)) return result;

  auto& scratch = graph::BfsScratch::ThreadLocal(g_->num_nodes());
  scratch.RunBackward(*g_, v, max_hops_);
  uint32_t duv = scratch.Distance(u);
  if (duv == graph::kUnreachable) return result;
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || scratch.Distance(t) == duv - 1) {
      result.followees.push_back(t);
    }
  }
  return result;
}

ReachCountResult PrunedOnlineSearch::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  ReachCountResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  if (DefinitelyUnreachable(u, v)) {
    sm.unreachable->Increment();
    return result;
  }
  auto& scratch = graph::BfsScratch::ThreadLocal(g_->num_nodes());
  scratch.RunBackward(*g_, v, max_hops_);
  uint32_t duv = scratch.Distance(u);
  if (duv == graph::kUnreachable) {
    sm.unreachable->Increment();
    return result;
  }
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    if (t == v || scratch.Distance(t) == duv - 1) ++result.followee_count;
  }
  return result;
}

double PrunedOnlineSearch::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double PrunedOnlineSearch::ScoreOnly(NodeId u, NodeId v) const {
  const ReachCountResult r = CountQuery(u, v);
  return WeightedScoreFromCount(r.distance, r.followee_count,
                                g_->OutDegree(u), u == v);
}

uint64_t PrunedOnlineSearch::IndexSizeBytes() const {
  return intervals_.size() * sizeof(Interval) +
         component_.size() * sizeof(uint32_t);
}

}  // namespace mel::reach

#include "reach/naive_reachability.h"

#include "reach/reach_metrics.h"

namespace mel::reach {

NaiveReachability::NaiveReachability(const graph::DirectedGraph* g,
                                     uint32_t max_hops)
    : g_(g), max_hops_(max_hops) {}

ReachQueryResult NaiveReachability::Query(NodeId u, NodeId v) const {
  ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  // Backward BFS from v: Distance(x) is then d_xv for every touched x.
  auto& scratch = graph::BfsScratch::ThreadLocal(g_->num_nodes());
  scratch.RunBackward(*g_, v, max_hops_);
  uint32_t duv = scratch.Distance(u);
  if (duv == graph::kUnreachable) return result;
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    // Theorem 1: t participates in a duv-hop shortest path from u to v
    // iff d_tv = duv - 1 (v itself qualifies when it is a direct followee).
    if (t == v || scratch.Distance(t) == duv - 1) {
      result.followees.push_back(t);
    }
  }
  return result;
}

ReachCountResult NaiveReachability::CountQuery(NodeId u, NodeId v) const {
  const ScoreOnlyMetrics& sm = GetScoreOnlyMetrics();
  sm.lookups->Increment();
  ReachCountResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  auto& scratch = graph::BfsScratch::ThreadLocal(g_->num_nodes());
  scratch.RunBackward(*g_, v, max_hops_);
  uint32_t duv = scratch.Distance(u);
  if (duv == graph::kUnreachable) {
    sm.unreachable->Increment();
    return result;
  }
  result.distance = duv;
  for (NodeId t : g_->OutNeighbors(u)) {
    // Same Theorem-1 membership test as Query, counting instead of
    // materializing.
    if (t == v || scratch.Distance(t) == duv - 1) ++result.followee_count;
  }
  return result;
}

double NaiveReachability::Score(NodeId u, NodeId v) const {
  return WeightedScore(Query(u, v), g_->OutDegree(u), u == v);
}

double NaiveReachability::ScoreOnly(NodeId u, NodeId v) const {
  const ReachCountResult r = CountQuery(u, v);
  return WeightedScoreFromCount(r.distance, r.followee_count,
                                g_->OutDegree(u), u == v);
}

}  // namespace mel::reach

#ifndef MEL_RECENCY_RECENCY_SOURCE_H_
#define MEL_RECENCY_RECENCY_SOURCE_H_

#include <cstdint>

#include "kb/types.h"

namespace mel::recency {

/// \brief Source of per-entity recent-tweet mass for the propagation
/// model.
///
/// Two implementations ship with the library:
///  * SlidingWindowRecency — exact counts by binary search over the
///    complemented knowledgebase's posting lists (the evaluation setup);
///  * BurstTracker — O(1)-maintenance bucketed ring counters for
///    streaming deployments that cannot retain full posting lists.
class RecencySource {
 public:
  /// Epoch() value of sources that cannot track their mutations; it
  /// disables result memoization in RecencyPropagator.
  static constexpr uint64_t kNoEpoch = static_cast<uint64_t>(-1);

  virtual ~RecencySource() = default;

  /// |D_e^tau| (possibly approximate) at time `now`.
  virtual uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const = 0;

  /// Thresholded burst mass: RecentCount when >= theta1, else 0 (the
  /// un-normalized Eq. 9 numerator and the propagation seed).
  virtual double BurstMass(kb::EntityId e, kb::Timestamp now) const = 0;

  /// Monotonic version of the underlying data: two calls returning the
  /// same value guarantee that no mutation affecting RecentCount/BurstMass
  /// happened in between. Sources that cannot make that guarantee keep
  /// the default kNoEpoch, which turns the propagation cache off.
  virtual uint64_t Epoch() const { return kNoEpoch; }

  /// Window-state token: BurstMass(e, now) is identical for any two `now`
  /// values with equal (Epoch, WindowToken). The default is the exact
  /// timestamp — always correct; bucketed sources return a coarser token
  /// so queries inside one bucket share memoized results.
  virtual uint64_t WindowToken(kb::Timestamp now) const {
    return static_cast<uint64_t>(now);
  }
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_RECENCY_SOURCE_H_

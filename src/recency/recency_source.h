#ifndef MEL_RECENCY_RECENCY_SOURCE_H_
#define MEL_RECENCY_RECENCY_SOURCE_H_

#include <cstdint>

#include "kb/types.h"

namespace mel::recency {

/// \brief Source of per-entity recent-tweet mass for the propagation
/// model.
///
/// Two implementations ship with the library:
///  * SlidingWindowRecency — exact counts by binary search over the
///    complemented knowledgebase's posting lists (the evaluation setup);
///  * BurstTracker — O(1)-maintenance bucketed ring counters for
///    streaming deployments that cannot retain full posting lists.
class RecencySource {
 public:
  virtual ~RecencySource() = default;

  /// |D_e^tau| (possibly approximate) at time `now`.
  virtual uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const = 0;

  /// Thresholded burst mass: RecentCount when >= theta1, else 0 (the
  /// un-normalized Eq. 9 numerator and the propagation seed).
  virtual double BurstMass(kb::EntityId e, kb::Timestamp now) const = 0;
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_RECENCY_SOURCE_H_

#include "recency/burst_tracker.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::recency {

namespace {

struct BurstMetrics {
  metrics::Counter* observes;
  metrics::Counter* expired_drops;
};

const BurstMetrics& GetBurstMetrics() {
  static const BurstMetrics m = [] {
    auto& reg = metrics::Registry();
    BurstMetrics bm;
    bm.observes = reg.GetCounter("recency.burst.observes_total");
    bm.expired_drops = reg.GetCounter("recency.burst.expired_drops_total");
    return bm;
  }();
  return m;
}

}  // namespace

BurstTracker::BurstTracker(uint32_t num_entities, kb::Timestamp tau,
                           uint32_t num_buckets, uint32_t theta1)
    : tau_(tau), num_buckets_(num_buckets), theta1_(theta1) {
  MEL_CHECK(tau > 0 && num_buckets > 0);
  bucket_width_ = std::max<kb::Timestamp>(1, tau / num_buckets);
  // One spare slot so the retained span is tau + bucket_width: a query
  // issued anywhere inside the head bucket still finds every bucket that
  // intersects [now - tau, now], making the approximation one-sided
  // (trailing-edge over-count only).
  slots_ = num_buckets_ + 1;
  rings_.resize(num_entities);
  for (auto& ring : rings_) {
    ring.counts.assign(slots_, 0);
    ring.stamps.assign(slots_, -1);
  }
}

void BurstTracker::Observe(kb::EntityId e, kb::Timestamp t) {
  MEL_CHECK(e < rings_.size());
  const BurstMetrics& bm = GetBurstMetrics();
  bm.observes->Increment();
  Ring& ring = rings_[e];
  int64_t bucket = BucketOf(t);
  if (ring.head_bucket < 0 || bucket > ring.head_bucket) {
    // O(1) head advance: skipped buckets are never zeroed — their slots
    // keep a stale stamp and retire lazily at the next touch.
    ring.head_bucket = bucket;
  } else if (ring.head_bucket - bucket >= slots_) {
    bm.expired_drops->Increment();
    return;  // older than the retained window: already expired
  }
  const size_t slot = static_cast<size_t>(bucket % slots_);
  if (ring.stamps[slot] != bucket) {
    ring.stamps[slot] = bucket;  // reclaim an expired slot
    ring.counts[slot] = 0;
  }
  ring.counts[slot] += 1;
  ++epoch_;
}

uint32_t BurstTracker::ApproxRecentCount(kb::EntityId e,
                                         kb::Timestamp now) const {
  MEL_CHECK(e < rings_.size());
  const Ring& ring = rings_[e];
  if (ring.head_bucket < 0) return 0;
  int64_t now_bucket = BucketOf(now);
  int64_t oldest_bucket = BucketOf(std::max<kb::Timestamp>(0, now - tau_));
  uint32_t total = 0;
  for (int64_t b = oldest_bucket; b <= now_bucket; ++b) {
    if (b > ring.head_bucket) break;        // future relative to data
    if (ring.head_bucket - b >= slots_) continue;  // evicted
    const size_t slot = static_cast<size_t>(b % slots_);
    // A mismatched stamp means the slot still holds a long-expired
    // bucket's count — logically zero for bucket b.
    if (ring.stamps[slot] == b) total += ring.counts[slot];
  }
  return total;
}

double BurstTracker::BurstMass(kb::EntityId e, kb::Timestamp now) const {
  uint32_t count = ApproxRecentCount(e, now);
  return count >= theta1_ ? static_cast<double>(count) : 0.0;
}

uint64_t BurstTracker::MemoryUsageBytes() const {
  return rings_.size() *
         (sizeof(Ring) + slots_ * (sizeof(uint32_t) + sizeof(int64_t)));
}

}  // namespace mel::recency

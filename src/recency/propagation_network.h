#ifndef MEL_RECENCY_PROPAGATION_NETWORK_H_
#define MEL_RECENCY_PROPAGATION_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "kb/wlm.h"
#include "util/thread_pool.h"

namespace mel::recency {

/// \brief The recency propagation network of Sec. 4.2 (Fig. 3).
///
/// Nodes are knowledgebase entities; an undirected weighted edge connects
/// two entities when
///   1. they are NOT candidates of a common mention (heuristic 1),
///   2. their WLM topical relatedness is at least theta2 (heuristics 2+3).
/// Clusters of strongly related entities are the connected components of
/// the thresholded graph (the paper's Graph-Cut step); recency is only
/// propagated within a cluster, which bounds per-query diffusion cost.
///
/// Candidate edge pairs are enumerated through hyperlink co-citation (two
/// entities must share at least one inlinking article to have WLM > 0),
/// avoiding the quadratic all-pairs WLM computation.
class PropagationNetwork {
 public:
  struct Edge {
    kb::EntityId target;
    double weight;       // WLM relatedness
    double probability;  // row-normalized propagation probability
  };

  /// Builds the network. theta2 is the minimum relatedness (paper
  /// default: 0.6). The knowledgebase must be finalized.
  ///
  /// Construction fans the co-citation enumeration and the theta2 WLM
  /// filter out across `pool` (nullptr = the shared pool). Every shard
  /// writes into a precomputed disjoint range and candidate pairs are
  /// canonicalized by sorted pair key before the CSR build, so the result
  /// is byte-identical for any thread count.
  static PropagationNetwork Build(const kb::Knowledgebase& kb, double theta2,
                                  util::ThreadPool* pool = nullptr);

  uint32_t num_entities() const {
    return static_cast<uint32_t>(cluster_of_.size());
  }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_clusters() const { return num_clusters_; }

  /// Cluster id of the entity (every entity has one; singletons allowed).
  uint32_t Cluster(kb::EntityId e) const { return cluster_of_[e]; }

  /// Position of the entity inside ClusterMembers(Cluster(e)) — the index
  /// its propagated recency occupies in a PropagateCluster result.
  uint32_t MemberIndex(kb::EntityId e) const { return member_index_[e]; }

  /// Entities of a cluster.
  std::span<const kb::EntityId> ClusterMembers(uint32_t cluster) const;

  /// Propagation neighbours of e with normalized probabilities.
  std::span<const Edge> Neighbors(kb::EntityId e) const;

  /// Size of the largest cluster (diffusion cost bound).
  uint32_t MaxClusterSize() const;

  /// Exact structural equality (adjacency, weights, probabilities,
  /// clusters) — the parallel-vs-serial build determinism check.
  bool IdenticalTo(const PropagationNetwork& other) const;

 private:
  PropagationNetwork() = default;

  std::vector<uint32_t> adj_offsets_;
  std::vector<Edge> adj_;
  std::vector<uint32_t> cluster_of_;
  std::vector<uint32_t> member_index_;
  std::vector<uint32_t> cluster_offsets_;
  std::vector<kb::EntityId> cluster_members_;
  uint64_t num_edges_ = 0;
  uint32_t num_clusters_ = 0;
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_PROPAGATION_NETWORK_H_

#include "recency/sliding_window.h"

#include "util/logging.h"

namespace mel::recency {

SlidingWindowRecency::SlidingWindowRecency(
    const kb::ComplementedKnowledgebase* ckb, kb::Timestamp tau,
    uint32_t theta1)
    : ckb_(ckb), tau_(tau), theta1_(theta1) {
  MEL_CHECK(ckb != nullptr);
  MEL_CHECK(tau > 0);
}

uint32_t SlidingWindowRecency::RecentCount(kb::EntityId e,
                                           kb::Timestamp now) const {
  return ckb_->RecentTweetCount(e, now, tau_);
}

double SlidingWindowRecency::BurstMass(kb::EntityId e,
                                       kb::Timestamp now) const {
  uint32_t count = RecentCount(e, now);
  return count >= theta1_ ? static_cast<double>(count) : 0.0;
}

std::vector<double> SlidingWindowRecency::Scores(
    std::span<const kb::EntityId> candidates, kb::Timestamp now) const {
  std::vector<double> scores(candidates.size(), 0.0);
  double denom = 0;
  std::vector<uint32_t> counts(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    counts[i] = RecentCount(candidates[i], now);
    denom += counts[i];
  }
  if (denom == 0) return scores;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (counts[i] >= theta1_) scores[i] = counts[i] / denom;
  }
  return scores;
}

}  // namespace mel::recency

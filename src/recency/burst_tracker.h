#ifndef MEL_RECENCY_BURST_TRACKER_H_
#define MEL_RECENCY_BURST_TRACKER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kb/types.h"
#include "recency/recency_source.h"

namespace mel::recency {

/// \brief Streaming sliding-window recency counter.
///
/// The reference SlidingWindowRecency answers |D_e^tau| by binary search
/// over full posting lists — exact, but it retains every link forever.
/// At the paper's target rate (Sec. 5.2.2: ~5000 tweets/second) a
/// deployment wants O(1) updates and O(1) memory per entity; this
/// tracker keeps a ring of `num_buckets` counters per entity covering
/// the window tau, trading bucket-granularity approximation (the window
/// edge is rounded to a bucket boundary, i.e., a relative error of at
/// most 1/num_buckets of the window) for constant-time maintenance.
///
/// Observations may arrive slightly out of order; anything older than
/// the retained window is dropped (it would have expired anyway).
class BurstTracker : public RecencySource {
 public:
  /// \param num_entities dense entity-id space size
  /// \param tau window length in seconds (paper: 3 days)
  /// \param num_buckets ring resolution (16 gives <= 6.25% edge error)
  /// \param theta1 burst threshold of Eq. 9
  BurstTracker(uint32_t num_entities, kb::Timestamp tau,
               uint32_t num_buckets, uint32_t theta1);

  /// Records one tweet linked to entity e at time t. Strict O(1): slots
  /// carry absolute-bucket stamps, so expired buckets retire lazily on
  /// their next read or write instead of being zeroed when the head
  /// advances over them.
  void Observe(kb::EntityId e, kb::Timestamp t);

  /// Approximate |D_e^tau| at time `now` (counts the buckets whose span
  /// intersects [now - tau, now]).
  uint32_t ApproxRecentCount(kb::EntityId e, kb::Timestamp now) const;

  /// RecencySource: same as ApproxRecentCount.
  uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const override {
    return ApproxRecentCount(e, now);
  }

  /// Thresholded burst mass, like SlidingWindowRecency::BurstMass.
  double BurstMass(kb::EntityId e, kb::Timestamp now) const override;

  /// Bumped by every Observe that lands in the retained window (dropped
  /// already-expired stragglers change no count and keep the epoch).
  uint64_t Epoch() const override { return epoch_; }

  /// Counts depend on `now` only through the bucket range
  /// [BucketOf(now - tau), BucketOf(now)], so queries inside one bucket
  /// share a token (and memoized propagation results).
  uint64_t WindowToken(kb::Timestamp now) const override {
    const uint64_t hi = static_cast<uint64_t>(BucketOf(now));
    const uint64_t lo = static_cast<uint64_t>(
        BucketOf(std::max<kb::Timestamp>(0, now - tau_)));
    return (hi << 32) ^ lo;
  }

  /// Bytes held by the rings.
  uint64_t MemoryUsageBytes() const;

  kb::Timestamp bucket_width() const { return bucket_width_; }

 private:
  struct Ring {
    // head_bucket is the absolute bucket index stored at slot
    // head_bucket % num_buckets; older buckets wrap behind it.
    int64_t head_bucket = -1;
    std::vector<uint32_t> counts;
    // stamps[s] is the absolute bucket slot s currently counts for; a
    // slot whose stamp disagrees with the bucket being read or written
    // is expired and logically zero. This retires any number of skipped
    // buckets in strict O(1) — advancing the head writes nothing.
    std::vector<int64_t> stamps;
  };

  int64_t BucketOf(kb::Timestamp t) const { return t / bucket_width_; }

  kb::Timestamp tau_;
  kb::Timestamp bucket_width_;
  uint32_t num_buckets_;
  uint32_t slots_ = 0;  // num_buckets_ + 1 (see constructor comment)
  uint32_t theta1_;
  uint64_t epoch_ = 0;
  std::vector<Ring> rings_;
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_BURST_TRACKER_H_

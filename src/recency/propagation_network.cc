#include "recency/propagation_network.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace mel::recency {

namespace {

uint64_t PairKey(kb::EntityId a, kb::EntityId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Simple union-find for cluster detection.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

PropagationNetwork PropagationNetwork::Build(const kb::Knowledgebase& kb,
                                             double theta2) {
  MEL_CHECK(kb.finalized());
  const uint32_t n = kb.num_entities();
  kb::WlmRelatedness wlm(&kb);

  // Heuristic 1: no recency flow between candidates of the same mention.
  std::unordered_set<uint64_t> excluded;
  for (const std::string& surface : kb.surfaces()) {
    auto cands = kb.Candidates(surface);
    for (size_t i = 0; i < cands.size(); ++i) {
      for (size_t j = i + 1; j < cands.size(); ++j) {
        excluded.insert(PairKey(cands[i].entity, cands[j].entity));
      }
    }
  }

  // Candidate pairs by hyperlink co-citation: WLM is positive only for
  // entities sharing an inlinking article.
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<kb::EntityId, kb::EntityId>> edges;
  for (kb::EntityId a = 0; a < n; ++a) {
    auto outs = kb.Outlinks(a);
    for (size_t i = 0; i < outs.size(); ++i) {
      for (size_t j = i + 1; j < outs.size(); ++j) {
        uint64_t key = PairKey(outs[i], outs[j]);
        if (!seen.insert(key).second) continue;
        if (excluded.contains(key)) continue;
        if (wlm.Relatedness(outs[i], outs[j]) >= theta2) {
          edges.emplace_back(outs[i], outs[j]);
        }
      }
    }
  }

  PropagationNetwork net;
  net.num_edges_ = edges.size();

  // Undirected adjacency in CSR form, with WLM weights.
  net.adj_offsets_.assign(n + 1, 0);
  for (const auto& [a, b] : edges) {
    ++net.adj_offsets_[a + 1];
    ++net.adj_offsets_[b + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    net.adj_offsets_[i + 1] += net.adj_offsets_[i];
  }
  net.adj_.resize(edges.size() * 2);
  {
    std::vector<uint32_t> cursor(net.adj_offsets_.begin(),
                                 net.adj_offsets_.end() - 1);
    for (const auto& [a, b] : edges) {
      double w = wlm.Relatedness(a, b);
      net.adj_[cursor[a]++] = Edge{b, w, 0};
      net.adj_[cursor[b]++] = Edge{a, w, 0};
    }
  }
  // Row-normalize edge weights into propagation probabilities.
  for (uint32_t e = 0; e < n; ++e) {
    double total = 0;
    for (uint32_t i = net.adj_offsets_[e]; i < net.adj_offsets_[e + 1]; ++i) {
      total += net.adj_[i].weight;
    }
    if (total <= 0) continue;
    for (uint32_t i = net.adj_offsets_[e]; i < net.adj_offsets_[e + 1]; ++i) {
      net.adj_[i].probability = net.adj_[i].weight / total;
    }
  }

  // Clusters = connected components of the thresholded graph.
  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  net.cluster_of_.assign(n, 0);
  std::vector<uint32_t> root_to_cluster(n, static_cast<uint32_t>(-1));
  for (uint32_t e = 0; e < n; ++e) {
    uint32_t root = uf.Find(e);
    if (root_to_cluster[root] == static_cast<uint32_t>(-1)) {
      root_to_cluster[root] = net.num_clusters_++;
    }
    net.cluster_of_[e] = root_to_cluster[root];
  }
  net.cluster_offsets_.assign(net.num_clusters_ + 1, 0);
  for (uint32_t e = 0; e < n; ++e) ++net.cluster_offsets_[net.cluster_of_[e] + 1];
  for (uint32_t c = 0; c < net.num_clusters_; ++c) {
    net.cluster_offsets_[c + 1] += net.cluster_offsets_[c];
  }
  net.cluster_members_.resize(n);
  {
    std::vector<uint32_t> cursor(net.cluster_offsets_.begin(),
                                 net.cluster_offsets_.end() - 1);
    for (uint32_t e = 0; e < n; ++e) {
      net.cluster_members_[cursor[net.cluster_of_[e]]++] = e;
    }
  }
  return net;
}

std::span<const kb::EntityId> PropagationNetwork::ClusterMembers(
    uint32_t cluster) const {
  MEL_CHECK(cluster < num_clusters_);
  return {cluster_members_.data() + cluster_offsets_[cluster],
          cluster_members_.data() + cluster_offsets_[cluster + 1]};
}

std::span<const PropagationNetwork::Edge> PropagationNetwork::Neighbors(
    kb::EntityId e) const {
  return {adj_.data() + adj_offsets_[e], adj_.data() + adj_offsets_[e + 1]};
}

uint32_t PropagationNetwork::MaxClusterSize() const {
  uint32_t best = 0;
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    best = std::max(best, cluster_offsets_[c + 1] - cluster_offsets_[c]);
  }
  return best;
}

}  // namespace mel::recency

#include "recency/propagation_network.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::recency {

namespace {

uint64_t PairKey(kb::EntityId a, kb::EntityId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

struct NetworkMetrics {
  metrics::Counter* candidate_pairs;
  metrics::Counter* edges;
  metrics::Histogram* build_ns;
};

const NetworkMetrics& GetNetworkMetrics() {
  static const NetworkMetrics m = [] {
    auto& reg = metrics::Registry();
    NetworkMetrics nm;
    nm.candidate_pairs = reg.GetCounter("recency.network.pairs_total");
    nm.edges = reg.GetCounter("recency.network.edges_total");
    nm.build_ns = reg.GetHistogram("recency.network.build_ns");
    return nm;
  }();
  return m;
}

// Simple union-find for cluster detection.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

PropagationNetwork PropagationNetwork::Build(const kb::Knowledgebase& kb,
                                             double theta2,
                                             util::ThreadPool* pool) {
  MEL_CHECK(kb.finalized());
  if (pool == nullptr) pool = &util::ThreadPool::Shared();
  const NetworkMetrics& nm = GetNetworkMetrics();
  metrics::ScopedStageTimer build_timer(nm.build_ns);
  const uint32_t n = kb.num_entities();
  kb::WlmRelatedness wlm(&kb);

  // Heuristic 1: no recency flow between candidates of the same mention.
  // Kept as a sorted key list — the filter below probes it by binary
  // search instead of hashing a pair per probe.
  std::vector<uint64_t> excluded;
  for (const std::string& surface : kb.surfaces()) {
    auto cands = kb.Candidates(surface);
    for (size_t i = 0; i < cands.size(); ++i) {
      for (size_t j = i + 1; j < cands.size(); ++j) {
        excluded.push_back(PairKey(cands[i].entity, cands[j].entity));
      }
    }
  }
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());

  // Candidate pairs by hyperlink co-citation: WLM is positive only for
  // entities sharing an inlinking article. Each article contributes a
  // known number of pairs, so shards write into disjoint ranges of one
  // flat array — the enumeration is independent of the thread count.
  std::vector<uint64_t> write_offsets(n + 1, 0);
  for (kb::EntityId a = 0; a < n; ++a) {
    const uint64_t deg = kb.Outlinks(a).size();
    write_offsets[a + 1] = write_offsets[a] + deg * (deg - 1) / 2;
  }
  std::vector<uint64_t> pairs(write_offsets[n]);
  pool->ParallelFor(0, n, 32, [&](size_t a) {
    auto outs = kb.Outlinks(static_cast<kb::EntityId>(a));
    uint64_t w = write_offsets[a];
    for (size_t i = 0; i < outs.size(); ++i) {
      for (size_t j = i + 1; j < outs.size(); ++j) {
        pairs[w++] = PairKey(outs[i], outs[j]);
      }
    }
  });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  nm.candidate_pairs->Increment(pairs.size());

  // Heuristic 1 filter + theta2 relatedness filter. The WLM weight is
  // computed once per surviving pair and reused for the CSR below (the
  // dominant build cost, fanned out across the pool).
  std::vector<double> weights(pairs.size());
  pool->ParallelFor(0, pairs.size(), 128, [&](size_t i) {
    const uint64_t key = pairs[i];
    if (std::binary_search(excluded.begin(), excluded.end(), key)) {
      weights[i] = -1.0;
      return;
    }
    const auto a = static_cast<kb::EntityId>(key >> 32);
    const auto b = static_cast<kb::EntityId>(key & 0xffffffffu);
    const double w = wlm.Relatedness(a, b);
    weights[i] = w >= theta2 ? w : -1.0;
  });
  struct WeightedEdge {
    kb::EntityId a, b;
    double weight;
  };
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (weights[i] < 0) continue;
    edges.push_back(WeightedEdge{static_cast<kb::EntityId>(pairs[i] >> 32),
                                 static_cast<kb::EntityId>(pairs[i]),
                                 weights[i]});
  }
  pairs.clear();
  pairs.shrink_to_fit();
  weights.clear();
  weights.shrink_to_fit();

  PropagationNetwork net;
  net.num_edges_ = edges.size();
  nm.edges->Increment(edges.size());

  // Undirected adjacency in CSR form, with WLM weights.
  net.adj_offsets_.assign(n + 1, 0);
  for (const auto& e : edges) {
    ++net.adj_offsets_[e.a + 1];
    ++net.adj_offsets_[e.b + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    net.adj_offsets_[i + 1] += net.adj_offsets_[i];
  }
  net.adj_.resize(edges.size() * 2);
  {
    std::vector<uint32_t> cursor(net.adj_offsets_.begin(),
                                 net.adj_offsets_.end() - 1);
    for (const auto& e : edges) {
      net.adj_[cursor[e.a]++] = Edge{e.b, e.weight, 0};
      net.adj_[cursor[e.b]++] = Edge{e.a, e.weight, 0};
    }
  }
  // Row-normalize edge weights into propagation probabilities.
  for (uint32_t e = 0; e < n; ++e) {
    double total = 0;
    for (uint32_t i = net.adj_offsets_[e]; i < net.adj_offsets_[e + 1]; ++i) {
      total += net.adj_[i].weight;
    }
    if (total <= 0) continue;
    for (uint32_t i = net.adj_offsets_[e]; i < net.adj_offsets_[e + 1]; ++i) {
      net.adj_[i].probability = net.adj_[i].weight / total;
    }
  }

  // Clusters = connected components of the thresholded graph.
  UnionFind uf(n);
  for (const auto& e : edges) uf.Union(e.a, e.b);
  net.cluster_of_.assign(n, 0);
  std::vector<uint32_t> root_to_cluster(n, static_cast<uint32_t>(-1));
  for (uint32_t e = 0; e < n; ++e) {
    uint32_t root = uf.Find(e);
    if (root_to_cluster[root] == static_cast<uint32_t>(-1)) {
      root_to_cluster[root] = net.num_clusters_++;
    }
    net.cluster_of_[e] = root_to_cluster[root];
  }
  net.cluster_offsets_.assign(net.num_clusters_ + 1, 0);
  for (uint32_t e = 0; e < n; ++e) ++net.cluster_offsets_[net.cluster_of_[e] + 1];
  for (uint32_t c = 0; c < net.num_clusters_; ++c) {
    net.cluster_offsets_[c + 1] += net.cluster_offsets_[c];
  }
  net.cluster_members_.resize(n);
  net.member_index_.assign(n, 0);
  {
    std::vector<uint32_t> cursor(net.cluster_offsets_.begin(),
                                 net.cluster_offsets_.end() - 1);
    for (uint32_t e = 0; e < n; ++e) {
      const uint32_t pos = cursor[net.cluster_of_[e]]++;
      net.cluster_members_[pos] = e;
      net.member_index_[e] = pos - net.cluster_offsets_[net.cluster_of_[e]];
    }
  }
  return net;
}

std::span<const kb::EntityId> PropagationNetwork::ClusterMembers(
    uint32_t cluster) const {
  MEL_CHECK(cluster < num_clusters_);
  return {cluster_members_.data() + cluster_offsets_[cluster],
          cluster_members_.data() + cluster_offsets_[cluster + 1]};
}

std::span<const PropagationNetwork::Edge> PropagationNetwork::Neighbors(
    kb::EntityId e) const {
  return {adj_.data() + adj_offsets_[e], adj_.data() + adj_offsets_[e + 1]};
}

uint32_t PropagationNetwork::MaxClusterSize() const {
  uint32_t best = 0;
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    best = std::max(best, cluster_offsets_[c + 1] - cluster_offsets_[c]);
  }
  return best;
}

bool PropagationNetwork::IdenticalTo(const PropagationNetwork& other) const {
  return num_edges_ == other.num_edges_ &&
         num_clusters_ == other.num_clusters_ &&
         adj_offsets_ == other.adj_offsets_ &&
         cluster_of_ == other.cluster_of_ &&
         member_index_ == other.member_index_ &&
         cluster_offsets_ == other.cluster_offsets_ &&
         cluster_members_ == other.cluster_members_ &&
         std::equal(adj_.begin(), adj_.end(), other.adj_.begin(),
                    other.adj_.end(), [](const Edge& a, const Edge& b) {
                      return a.target == b.target && a.weight == b.weight &&
                             a.probability == b.probability;
                    });
}

}  // namespace mel::recency

#ifndef MEL_RECENCY_RECENCY_PROPAGATOR_H_
#define MEL_RECENCY_RECENCY_PROPAGATOR_H_

#include <mutex>
#include <span>
#include <vector>

#include "kb/types.h"
#include "recency/propagation_network.h"
#include "recency/recency_source.h"
#include "recency/sliding_window.h"

namespace mel::recency {

/// \brief Options for the PageRank-style reinforcement of Eq. 11.
struct PropagatorOptions {
  /// lambda: weight of the recency gathered from underlying tweets vs the
  /// part reinforced by related entities.
  double lambda = 0.8;
  /// Power-iteration stops after this many rounds...
  uint32_t max_iterations = 20;
  /// ...or when the L1 change drops below this.
  double convergence_epsilon = 1e-6;
  /// Memoize PropagateCluster results keyed by the source's
  /// (Epoch, WindowToken): the power iteration reruns only when tweets
  /// arrive/expire or `now` leaves the current window state. Only takes
  /// effect for sources that track their mutations (Epoch != kNoEpoch).
  bool enable_cache = true;
};

/// \brief Runs recency propagation (Eq. 11) restricted to clusters of the
/// propagation network.
///
///   S_r^i = lambda * S_r^0 + (1 - lambda) * P * S_r^{i-1}
///
/// Restricting the power iteration to the (small) cluster containing a
/// candidate is what keeps online inference fast: a burst on "NBA" only
/// ever diffuses inside the basketball cluster.
///
/// With the cache enabled, per-cluster results are memoized under a
/// per-cluster mutex, so concurrent LinkMention calls (the WarmUp
/// contract) stay safe and the power iteration runs at most once per
/// (cluster, window state). Hits/misses/invalidation counts are exported
/// as `recency.cache.*`.
class RecencyPropagator {
 public:
  /// All dependencies must outlive this object.
  RecencyPropagator(const PropagationNetwork* network,
                    const RecencySource* source,
                    const PropagatorOptions& options);

  /// Propagated recency of every member of the given cluster at time
  /// `now`, aligned with PropagationNetwork::ClusterMembers(cluster).
  /// The initial vector is the thresholded burst mass (Eq. 9 numerator)
  /// normalized within the cluster.
  std::vector<double> PropagateCluster(uint32_t cluster,
                                       kb::Timestamp now) const;

  /// Convenience for online inference: propagated recency of each
  /// candidate at time `now` (propagation runs once per distinct cluster
  /// among the candidates), normalized over the candidate set so the
  /// result is directly usable as S_r in Eq. 1. With propagation disabled
  /// (enable_propagation = false) this degenerates to plain Eq. 9 — the
  /// ablation of Fig. 4(d).
  std::vector<double> CandidateScores(
      std::span<const kb::EntityId> candidates, kb::Timestamp now,
      bool enable_propagation) const;

  const PropagatorOptions& options() const { return options_; }

 private:
  /// The uncached Eq. 11 power iteration.
  std::vector<double> ComputeCluster(uint32_t cluster,
                                     kb::Timestamp now) const;

  struct CacheSlot {
    std::mutex mu;
    uint64_t epoch = 0;
    uint64_t token = 0;
    bool valid = false;
    std::vector<double> values;
  };

  const PropagationNetwork* network_;
  const RecencySource* source_;
  PropagatorOptions options_;
  mutable std::vector<CacheSlot> cache_;  // one slot per cluster
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_RECENCY_PROPAGATOR_H_

#include "recency/recency_propagator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::recency {

namespace {

struct PropagatorMetrics {
  metrics::Counter* runs;
  metrics::Counter* cache_hits;
  metrics::Counter* cache_misses;
  metrics::Counter* cache_invalidations;
  metrics::Histogram* iterations;
  metrics::Histogram* cluster_size;
};

const PropagatorMetrics& GetPropagatorMetrics() {
  static const PropagatorMetrics m = [] {
    auto& reg = metrics::Registry();
    PropagatorMetrics pm;
    pm.runs = reg.GetCounter("recency.propagation.runs_total");
    pm.cache_hits = reg.GetCounter("recency.cache.hits_total");
    pm.cache_misses = reg.GetCounter("recency.cache.misses_total");
    pm.cache_invalidations =
        reg.GetCounter("recency.cache.invalidations_total");
    pm.iterations = reg.GetHistogram("recency.propagation.iterations");
    pm.cluster_size = reg.GetHistogram("recency.propagation.cluster_size");
    return pm;
  }();
  return m;
}

}  // namespace

RecencyPropagator::RecencyPropagator(const PropagationNetwork* network,
                                     const RecencySource* source,
                                     const PropagatorOptions& options)
    : network_(network), source_(source), options_(options) {
  MEL_CHECK(network != nullptr && source != nullptr);
  MEL_CHECK(options.lambda >= 0 && options.lambda <= 1);
  if (options_.enable_cache) {
    cache_ = std::vector<CacheSlot>(network_->num_clusters());
  }
}

std::vector<double> RecencyPropagator::PropagateCluster(
    uint32_t cluster, kb::Timestamp now) const {
  const uint64_t epoch = source_->Epoch();
  if (!options_.enable_cache || epoch == RecencySource::kNoEpoch) {
    return ComputeCluster(cluster, now);
  }
  const PropagatorMetrics& pm = GetPropagatorMetrics();
  const uint64_t token = source_->WindowToken(now);
  CacheSlot& slot = cache_[cluster];
  // The slot lock covers the recompute: concurrent queries against the
  // same cluster wait for (and then reuse) one power iteration instead of
  // racing through duplicates. Different clusters never contend.
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.valid && slot.epoch == epoch && slot.token == token) {
    pm.cache_hits->Increment();
    return slot.values;
  }
  if (slot.valid) pm.cache_invalidations->Increment();
  pm.cache_misses->Increment();
  slot.values = ComputeCluster(cluster, now);
  slot.epoch = epoch;
  slot.token = token;
  slot.valid = true;
  return slot.values;
}

std::vector<double> RecencyPropagator::ComputeCluster(
    uint32_t cluster, kb::Timestamp now) const {
  auto members = network_->ClusterMembers(cluster);
  const size_t m = members.size();
  const PropagatorMetrics& pm = GetPropagatorMetrics();
  pm.runs->Increment();
  if (metrics::Enabled()) pm.cluster_size->Record(m);

  // Initial vector S_r^0: raw thresholded burst mass. The vector is NOT
  // normalized here — the iteration of Eq. 11 is linear, and keeping raw
  // masses preserves relative burst magnitude across clusters so the
  // final candidate-set normalization (Eq. 9) stays meaningful.
  std::vector<double> initial(m, 0.0);
  double total = 0;
  for (size_t i = 0; i < m; ++i) {
    initial[i] = source_->BurstMass(members[i], now);
    total += initial[i];
  }
  if (total == 0 || m == 1) return initial;  // nothing to diffuse

  std::vector<double> current = initial;
  std::vector<double> next(m);
  const double lambda = options_.lambda;
  uint32_t iterations_used = 0;
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    double delta = 0;
    for (size_t i = 0; i < m; ++i) {
      double pulled = 0;
      for (const auto& edge : network_->Neighbors(members[i])) {
        // Neighbours are always in the same cluster by construction, so
        // their position in `current` is the precomputed member index.
        pulled += edge.probability *
                  current[network_->MemberIndex(edge.target)];
      }
      next[i] = lambda * initial[i] + (1 - lambda) * pulled;
      delta += std::abs(next[i] - current[i]);
    }
    current.swap(next);
    ++iterations_used;
    if (delta < options_.convergence_epsilon) break;
  }
  if (metrics::Enabled()) pm.iterations->Record(iterations_used);
  return current;
}

std::vector<double> RecencyPropagator::CandidateScores(
    std::span<const kb::EntityId> candidates, kb::Timestamp now,
    bool enable_propagation) const {
  std::vector<double> raw(candidates.size(), 0.0);
  if (!enable_propagation) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      raw[i] = source_->BurstMass(candidates[i], now);
    }
  } else {
    // Propagate once per distinct cluster among the candidates.
    std::vector<std::pair<uint32_t, std::vector<double>>> cluster_results;
    for (size_t i = 0; i < candidates.size(); ++i) {
      uint32_t cluster = network_->Cluster(candidates[i]);
      const std::vector<double>* result = nullptr;
      for (const auto& [cid, values] : cluster_results) {
        if (cid == cluster) {
          result = &values;
          break;
        }
      }
      if (result == nullptr) {
        cluster_results.emplace_back(cluster,
                                     PropagateCluster(cluster, now));
        result = &cluster_results.back().second;
      }
      raw[i] = (*result)[network_->MemberIndex(candidates[i])];
    }
  }
  // Normalize over the candidate set (Eq. 9's denominator role).
  double total = 0;
  for (double v : raw) total += v;
  if (total > 0) {
    for (double& v : raw) v /= total;
  }
  return raw;
}

}  // namespace mel::recency

#ifndef MEL_RECENCY_SLIDING_WINDOW_H_
#define MEL_RECENCY_SLIDING_WINDOW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/complemented_kb.h"
#include "kb/types.h"
#include "recency/recency_source.h"

namespace mel::recency {

/// \brief Sliding-window burst detector (Sec. 4.2, Eq. 9).
///
/// An entity is "fresh" when at least theta1 tweets were linked to it
/// inside the window [now - tau, now]. Scores are normalized over a
/// mention's candidate set.
class SlidingWindowRecency : public RecencySource {
 public:
  /// \param ckb complemented knowledgebase (must outlive this object)
  /// \param tau window length in seconds (paper default: 3 days)
  /// \param theta1 minimum recent tweets forming a burst (default: 10)
  SlidingWindowRecency(const kb::ComplementedKnowledgebase* ckb,
                       kb::Timestamp tau, uint32_t theta1);

  /// |D_e^tau|: tweets linked to e in the window ending at `now`.
  uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const override;

  /// Thresholded burst mass: |D_e^tau| when >= theta1, else 0. This is
  /// the un-normalized numerator of Eq. 9 and the initial recency fed to
  /// the propagation model.
  double BurstMass(kb::EntityId e, kb::Timestamp now) const override;

  /// Eq. 9 for a whole candidate set: the i-th result is S_r of
  /// candidates[i], normalized by the total recent count over the set.
  std::vector<double> Scores(std::span<const kb::EntityId> candidates,
                             kb::Timestamp now) const;

  /// Counts come straight from the complemented KB's posting lists, so
  /// its mutation counter is exactly this source's epoch.
  uint64_t Epoch() const override { return ckb_->version(); }

  kb::Timestamp tau() const { return tau_; }
  uint32_t theta1() const { return theta1_; }

 private:
  const kb::ComplementedKnowledgebase* ckb_;
  kb::Timestamp tau_;
  uint32_t theta1_;
};

}  // namespace mel::recency

#endif  // MEL_RECENCY_SLIDING_WINDOW_H_

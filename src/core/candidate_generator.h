#ifndef MEL_CORE_CANDIDATE_GENERATOR_H_
#define MEL_CORE_CANDIDATE_GENERATOR_H_

#include <string_view>
#include <vector>

#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "text/gazetteer.h"
#include "text/qgram_index.h"

namespace mel::core {

/// \brief Candidate generation (Sec. 3.2.2, step 1).
///
/// Exact lookup against the knowledgebase's surface forms, falling back to
/// segment-index fuzzy matching on edit distance for misspelled mentions.
/// Also hosts the longest-cover gazetteer used to detect mentions inside
/// whole tweets.
class CandidateGenerator {
 public:
  /// \param kb finalized knowledgebase (must outlive this object)
  /// \param fuzzy_max_edits maximum edit distance for the fuzzy fallback;
  ///        0 disables fuzzy matching entirely.
  CandidateGenerator(const kb::Knowledgebase* kb, uint32_t fuzzy_max_edits);

  /// Candidate entities of the mention, ordered by descending anchor
  /// count. Falls back to fuzzy matching when no exact surface matches.
  std::vector<kb::Candidate> Generate(std::string_view mention) const;

  /// Detects entity mentions in tweet text (longest-cover NER).
  std::vector<text::DetectedMention> DetectMentions(
      std::string_view tweet_text) const;

  const kb::Knowledgebase& kb() const { return *kb_; }

 private:
  const kb::Knowledgebase* kb_;
  uint32_t fuzzy_max_edits_;
  text::Gazetteer gazetteer_;
  text::SegmentFuzzyIndex fuzzy_index_;
};

}  // namespace mel::core

#endif  // MEL_CORE_CANDIDATE_GENERATOR_H_

#include "core/parallel_linker.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/metrics.h"

namespace mel::core {

namespace {

struct ParallelMetrics {
  metrics::Counter* batches;
  metrics::Counter* items;
  metrics::Gauge* queue_depth;
  metrics::Gauge* active_workers;
  metrics::Histogram* worker_items;
  metrics::Histogram* batch_ns;
};

const ParallelMetrics& GetParallelMetrics() {
  static const ParallelMetrics m = [] {
    auto& reg = metrics::Registry();
    ParallelMetrics pm;
    pm.batches = reg.GetCounter("parallel.batches_total");
    pm.items = reg.GetCounter("parallel.items_total");
    pm.queue_depth = reg.GetGauge("parallel.queue_depth");
    pm.active_workers = reg.GetGauge("parallel.active_workers");
    pm.worker_items = reg.GetHistogram("parallel.worker_items");
    pm.batch_ns = reg.GetHistogram("parallel.batch_ns");
    return pm;
  }();
  return m;
}

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

// Runs fn(i) for every i in [0, count) across the given worker count,
// pulling indices from a shared atomic counter (good load balance when
// per-item cost varies, as it does with community sizes).
//
// The shared counter doubles as the queue-depth signal: the
// "parallel.queue_depth" gauge tracks count - dispatched, and each
// worker's pulled-item count lands in "parallel.worker_items" (the
// spread between workers is the load-balance picture).
template <typename Fn>
void ParallelFor(size_t count, uint32_t num_threads, Fn fn) {
  if (count == 0) return;
  const ParallelMetrics& pm = GetParallelMetrics();
  metrics::ScopedStageTimer batch_timer(pm.batch_ns);
  pm.batches->Increment();
  pm.items->Increment(count);
  num_threads = std::min<uint32_t>(num_threads,
                                   static_cast<uint32_t>(count));
  pm.active_workers->Set(num_threads <= 1 ? 1 : num_threads);
  pm.queue_depth->Set(static_cast<int64_t>(count));
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
      pm.queue_depth->Add(-1);
    }
    if (metrics::Enabled()) pm.worker_items->Record(count);
    pm.active_workers->Set(0);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      uint64_t pulled = 0;
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        fn(i);
        ++pulled;
        pm.queue_depth->Add(-1);
      }
      if (metrics::Enabled()) pm.worker_items->Record(pulled);
    });
  }
  for (auto& worker : workers) worker.join();
  pm.queue_depth->Set(0);
  pm.active_workers->Set(0);
}

}  // namespace

std::vector<TweetLinkResult> LinkTweetsParallel(
    EntityLinker* linker, std::span<const kb::Tweet> tweets,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<TweetLinkResult> results(tweets.size());
  ParallelFor(tweets.size(), ResolveThreads(num_threads),
              [&](size_t i) { results[i] = shared.LinkTweet(tweets[i]); });
  return results;
}

std::vector<MentionLinkResult> LinkMentionsParallel(
    EntityLinker* linker, std::span<const MentionRequest> requests,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<MentionLinkResult> results(requests.size());
  ParallelFor(requests.size(), ResolveThreads(num_threads), [&](size_t i) {
    results[i] = shared.LinkMention(requests[i].surface, requests[i].user,
                                    requests[i].time);
  });
  return results;
}

}  // namespace mel::core

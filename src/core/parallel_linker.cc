#include "core/parallel_linker.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace mel::core {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

// Runs fn(i) for every i in [0, count) across the given worker count,
// pulling indices from a shared atomic counter (good load balance when
// per-item cost varies, as it does with community sizes).
template <typename Fn>
void ParallelFor(size_t count, uint32_t num_threads, Fn fn) {
  if (count == 0) return;
  num_threads = std::min<uint32_t>(num_threads,
                                   static_cast<uint32_t>(count));
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace

std::vector<TweetLinkResult> LinkTweetsParallel(
    EntityLinker* linker, std::span<const kb::Tweet> tweets,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<TweetLinkResult> results(tweets.size());
  ParallelFor(tweets.size(), ResolveThreads(num_threads),
              [&](size_t i) { results[i] = shared.LinkTweet(tweets[i]); });
  return results;
}

std::vector<MentionLinkResult> LinkMentionsParallel(
    EntityLinker* linker, std::span<const MentionRequest> requests,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<MentionLinkResult> results(requests.size());
  ParallelFor(requests.size(), ResolveThreads(num_threads), [&](size_t i) {
    results[i] = shared.LinkMention(requests[i].surface, requests[i].user,
                                    requests[i].time);
  });
  return results;
}

}  // namespace mel::core

#include "core/parallel_linker.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace mel::core {

namespace {

struct ParallelMetrics {
  metrics::Counter* batches;
  metrics::Counter* items;
  metrics::Gauge* queue_depth;
  metrics::Gauge* active_workers;
  metrics::Histogram* batch_ns;
};

const ParallelMetrics& GetParallelMetrics() {
  static const ParallelMetrics m = [] {
    auto& reg = metrics::Registry();
    ParallelMetrics pm;
    pm.batches = reg.GetCounter("parallel.batches_total");
    pm.items = reg.GetCounter("parallel.items_total");
    pm.queue_depth = reg.GetGauge("parallel.queue_depth");
    pm.active_workers = reg.GetGauge("parallel.active_workers");
    pm.batch_ns = reg.GetHistogram("parallel.batch_ns");
    return pm;
  }();
  return m;
}

// Runs fn(i) for every i in [0, count) on the shared pool, capped at
// num_threads participants (0 = whole pool). Grain 1 keeps the dynamic
// load balance the old ad-hoc striping had: per-item cost varies with
// community sizes, so workers pull one tweet/mention at a time.
//
// The "parallel.queue_depth" gauge tracks count - completed, and the
// per-participant pull counts land in "util.pool.worker_items".
template <typename Fn>
void RunBatch(size_t count, uint32_t num_threads, Fn fn) {
  if (count == 0) return;
  const ParallelMetrics& pm = GetParallelMetrics();
  metrics::ScopedStageTimer batch_timer(pm.batch_ns);
  pm.batches->Increment();
  pm.items->Increment(count);
  auto& pool = util::ThreadPool::Shared();
  uint32_t participants =
      num_threads == 0 ? pool.num_threads() : num_threads;
  participants = std::min<uint32_t>(participants,
                                    static_cast<uint32_t>(count));
  pm.active_workers->Set(participants);
  pm.queue_depth->Set(static_cast<int64_t>(count));
  pool.ParallelFor(
      0, count, /*grain=*/1,
      [&](size_t i) {
        fn(i);
        pm.queue_depth->Add(-1);
      },
      num_threads);
  pm.queue_depth->Set(0);
  pm.active_workers->Set(0);
}

}  // namespace

std::vector<TweetLinkResult> LinkTweetsParallel(
    EntityLinker* linker, std::span<const kb::Tweet> tweets,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<TweetLinkResult> results(tweets.size());
  RunBatch(tweets.size(), num_threads,
           [&](size_t i) { results[i] = shared.LinkTweet(tweets[i]); });
  return results;
}

std::vector<MentionLinkResult> LinkMentionsParallel(
    EntityLinker* linker, std::span<const MentionRequest> requests,
    uint32_t num_threads) {
  linker->WarmUp();
  const EntityLinker& shared = *linker;
  std::vector<MentionLinkResult> results(requests.size());
  RunBatch(requests.size(), num_threads, [&](size_t i) {
    results[i] = shared.LinkMention(requests[i].surface, requests[i].user,
                                    requests[i].time);
  });
  return results;
}

}  // namespace mel::core

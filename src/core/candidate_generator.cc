#include "core/candidate_generator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::core {

namespace {

struct CandGenMetrics {
  metrics::Counter* exact_hits;
  metrics::Counter* fuzzy_fallbacks;
  metrics::Counter* fuzzy_surfaces_matched;
  metrics::Counter* unmatched;
};

const CandGenMetrics& GetCandGenMetrics() {
  static const CandGenMetrics m = [] {
    auto& reg = metrics::Registry();
    CandGenMetrics cm;
    cm.exact_hits = reg.GetCounter("candgen.exact_hits_total");
    cm.fuzzy_fallbacks = reg.GetCounter("candgen.fuzzy.fallbacks_total");
    cm.fuzzy_surfaces_matched =
        reg.GetCounter("candgen.fuzzy.surfaces_matched_total");
    cm.unmatched = reg.GetCounter("candgen.fuzzy.unmatched_total");
    return cm;
  }();
  return m;
}

}  // namespace

CandidateGenerator::CandidateGenerator(const kb::Knowledgebase* kb,
                                       uint32_t fuzzy_max_edits)
    : kb_(kb),
      fuzzy_max_edits_(fuzzy_max_edits),
      fuzzy_index_(std::max(1u, fuzzy_max_edits)) {
  MEL_CHECK(kb != nullptr && kb->finalized());
  const auto& surfaces = kb->surfaces();
  for (uint32_t sid = 0; sid < surfaces.size(); ++sid) {
    gazetteer_.AddSurfaceForm(surfaces[sid], sid);
    if (fuzzy_max_edits_ > 0) fuzzy_index_.Add(surfaces[sid], sid);
  }
}

std::vector<kb::Candidate> CandidateGenerator::Generate(
    std::string_view mention) const {
  const CandGenMetrics& cm = GetCandGenMetrics();
  auto exact = kb_->Candidates(mention);
  if (!exact.empty()) {
    cm.exact_hits->Increment();
    return {exact.begin(), exact.end()};
  }
  if (fuzzy_max_edits_ == 0) return {};

  // Fuzzy fallback: surfaces within edit distance, candidates merged with
  // anchor counts accumulated across matching surfaces.
  cm.fuzzy_fallbacks->Increment();
  std::vector<uint32_t> surface_ids =
      fuzzy_index_.Lookup(mention, fuzzy_max_edits_);
  if (surface_ids.empty()) {
    cm.unmatched->Increment();
  } else {
    cm.fuzzy_surfaces_matched->Increment(surface_ids.size());
  }
  std::vector<kb::Candidate> merged;
  for (uint32_t sid : surface_ids) {
    for (const kb::Candidate& c : kb_->CandidatesBySurfaceId(sid)) {
      auto it = std::find_if(merged.begin(), merged.end(),
                             [&](const kb::Candidate& m) {
                               return m.entity == c.entity;
                             });
      if (it == merged.end()) {
        merged.push_back(c);
      } else {
        it->anchor_count += c.anchor_count;
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const kb::Candidate& a, const kb::Candidate& b) {
                     return a.anchor_count > b.anchor_count;
                   });
  return merged;
}

std::vector<text::DetectedMention> CandidateGenerator::DetectMentions(
    std::string_view tweet_text) const {
  return gazetteer_.Detect(tweet_text);
}

}  // namespace mel::core

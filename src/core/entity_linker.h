#ifndef MEL_CORE_ENTITY_LINKER_H_
#define MEL_CORE_ENTITY_LINKER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/candidate_generator.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "reach/weighted_reachability.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/sliding_window.h"
#include "social/influence.h"
#include "social/influential_index.h"
#include "social/user_interest.h"

namespace mel::core {

/// \brief All tunables of the framework; defaults follow the paper's
/// Table 3 where given.
struct LinkerOptions {
  /// Feature weights of Eq. 1 (alpha + beta + gamma should be 1).
  /// NOTE: the paper's Table 3 / Table 4 convention is followed —
  /// beta weighs recency, gamma weighs popularity.
  double alpha = 0.6;  // user interest
  double beta = 0.3;   // entity recency
  double gamma = 0.1;  // entity popularity

  /// Recency window tau (Table 3: 3 days) and burst threshold theta1.
  kb::Timestamp tau = 3 * kb::kSecondsPerDay;
  uint32_t theta1 = 10;

  /// Number of most influential users whose reachability is aggregated
  /// into S_in (Eq. 8); 0 means the entire community (Eq. 3).
  uint32_t top_k_influential = 5;

  /// Number of entities returned per mention.
  uint32_t top_k_results = 3;

  social::InfluenceMethod influence_method =
      social::InfluenceMethod::kEntropy;

  /// Serve influential users from the offline InfluentialUserIndex
  /// (Sec. 3.2.1 knowledge acquisition) instead of ranking communities
  /// per query. Entries are invalidated by ConfirmLink. Mentions reaching
  /// the fuzzy candidate path (no single surface id) always fall back to
  /// the online computation.
  bool use_influential_index = true;

  /// Recency reinforcement between related entities (Fig. 4(d) ablation).
  bool enable_recency_propagation = true;
  recency::PropagatorOptions propagator;

  /// Fuzzy candidate generation: maximum edit distance (0 disables).
  uint32_t fuzzy_max_edits = 1;

  /// Appendix D: when true, candidates scoring at most beta + gamma are
  /// suppressed — the user shows no interest in any existing meaning, so
  /// the mention likely refers to an entity missing from the KB.
  bool reject_below_interest_threshold = false;
};

/// \brief One scored candidate with its feature breakdown.
struct ScoredEntity {
  kb::EntityId entity = kb::kInvalidEntity;
  double score = 0;       // Eq. 1
  double interest = 0;    // S_in(u, e)
  double recency = 0;     // S_r(e)
  double popularity = 0;  // S_p(e)
};

/// \brief Linking outcome for a single mention.
struct MentionLinkResult {
  std::string surface;
  /// Candidates sorted by descending score, truncated to top_k_results.
  std::vector<ScoredEntity> ranked;
  /// True when the mention had at least one candidate but all were
  /// suppressed by the Appendix-D threshold — a probable new entity.
  bool probable_new_entity = false;

  bool linked() const { return !ranked.empty(); }
  kb::EntityId best() const {
    return ranked.empty() ? kb::kInvalidEntity : ranked.front().entity;
  }
};

/// \brief Linking outcome for a whole tweet.
struct TweetLinkResult {
  std::vector<MentionLinkResult> mentions;
};

/// \brief The paper's on-the-fly entity linker (Sec. 3.2.2): candidate
/// generation followed by scoring with user interest (social), entity
/// recency (temporal), and entity popularity.
///
/// Mentions are linked independently — no intra- or inter-tweet coupling —
/// which is what makes the approach embarrassingly parallel and suitable
/// for streaming workloads.
class EntityLinker {
 public:
  /// All dependencies must outlive the linker. `ckb` is mutable because
  /// online feedback (ConfirmLink) complements the knowledgebase in place.
  ///
  /// `recency_override` replaces the internal exact SlidingWindowRecency
  /// as the burst-mass source — pass a streaming recency::BurstTracker
  /// for deployments that cannot afford full posting lists. The caller
  /// keeps it fed (e.g., Observe on every confirmed link) and alive.
  EntityLinker(const kb::Knowledgebase* kb,
               kb::ComplementedKnowledgebase* ckb,
               const reach::WeightedReachability* reachability,
               const recency::PropagationNetwork* propagation_network,
               const LinkerOptions& options,
               const recency::RecencySource* recency_override = nullptr);

  /// Links a single mention issued by `user` at time `now`.
  MentionLinkResult LinkMention(std::string_view mention, kb::UserId user,
                                kb::Timestamp now) const;

  /// Detects mentions in the tweet's text and links each independently.
  TweetLinkResult LinkTweet(const kb::Tweet& tweet) const;

  /// Online feedback loop (Sec. 3.2.2): the author confirmed that the
  /// tweet refers to `entity`; the complemented knowledgebase absorbs the
  /// link so future popularity/recency/influence reflect it.
  void ConfirmLink(kb::EntityId entity, const kb::Tweet& tweet);

  /// Materializes all lazily computed shared state (influential-user
  /// cache, posting-list sort order). After WarmUp — and until the next
  /// ConfirmLink — LinkMention and LinkTweet are safe to call from
  /// multiple threads concurrently (see LinkTweetsParallel).
  void WarmUp();

  const LinkerOptions& options() const { return options_; }
  LinkerOptions* mutable_options() { return &options_; }
  const CandidateGenerator& candidate_generator() const {
    return candidate_generator_;
  }

 private:
  const kb::Knowledgebase* kb_;
  kb::ComplementedKnowledgebase* ckb_;
  LinkerOptions options_;
  CandidateGenerator candidate_generator_;
  social::InfluenceEstimator influence_;
  social::UserInterestScorer interest_;
  recency::SlidingWindowRecency window_;
  recency::RecencyPropagator propagator_;
  // Lazily filled offline cache; mutable because lookups during the
  // logically-const LinkMention populate it.
  mutable social::InfluentialUserIndex influential_index_;
};

}  // namespace mel::core

#endif  // MEL_CORE_ENTITY_LINKER_H_

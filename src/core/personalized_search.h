#ifndef MEL_CORE_PERSONALIZED_SEARCH_H_
#define MEL_CORE_PERSONALIZED_SEARCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/entity_linker.h"
#include "kb/complemented_kb.h"
#include "kb/types.h"

namespace mel::core {

/// \brief Options for personalized microblog search.
struct SearchOptions {
  /// Entities considered per query mention.
  uint32_t top_k_entities = 3;
  /// Tweets returned overall.
  uint32_t top_k_tweets = 10;
  /// When true, only tweets newer than `now - freshness_window` qualify;
  /// 0 disables the filter.
  kb::Timestamp freshness_window = 0;
};

/// \brief One retrieved tweet.
struct SearchHit {
  kb::TweetId tweet = 0;
  kb::UserId author = kb::kInvalidUser;
  kb::Timestamp time = 0;
  kb::EntityId entity = kb::kInvalidEntity;  // why it matched
  double relevance = 0;  // entity link score, recency-tie-broken
};

/// \brief A personalized search answer: how the query's mentions were
/// interpreted, and the matching tweets.
struct SearchResult {
  std::vector<MentionLinkResult> interpretations;
  std::vector<SearchHit> hits;  // sorted by descending relevance
};

/// \brief Personalized microblog search (Sec. 1 / Sec. 3.2.2): entity
/// mentions in a keyword query are disambiguated *for the issuing user*
/// with the social-temporal linker, and the tweets linked to the winning
/// entities in the complemented knowledgebase form the result set.
class PersonalizedSearch {
 public:
  /// Both dependencies must outlive this object.
  PersonalizedSearch(const EntityLinker* linker,
                     const kb::ComplementedKnowledgebase* ckb);

  /// Runs a query issued by `user` at time `now`.
  SearchResult Query(std::string_view query_text, kb::UserId user,
                     kb::Timestamp now, const SearchOptions& options) const;

 private:
  const EntityLinker* linker_;
  const kb::ComplementedKnowledgebase* ckb_;
};

}  // namespace mel::core

#endif  // MEL_CORE_PERSONALIZED_SEARCH_H_

#ifndef MEL_CORE_PARALLEL_LINKER_H_
#define MEL_CORE_PARALLEL_LINKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/entity_linker.h"
#include "kb/types.h"

namespace mel::core {

/// \brief Parallel batch linking.
///
/// The framework links mentions independently — no intra- or inter-tweet
/// coupling — so a batch parallelizes trivially (Sec. 5.2.2: "our
/// framework can be easily parallelized"). The linker is warmed up first
/// (WarmUp), after which LinkTweet is a pure read and the batch runs on
/// the shared util::ThreadPool. Every reachability backend is safe for
/// concurrent reads (BFS scratch is per-thread).
///
/// \param linker the linker; mutated only by the WarmUp call
/// \param tweets the batch; result i corresponds to tweets[i]
/// \param num_threads cap on participating threads; 0 = whole pool
///        (hardware concurrency)
std::vector<TweetLinkResult> LinkTweetsParallel(
    EntityLinker* linker, std::span<const kb::Tweet> tweets,
    uint32_t num_threads);

/// \brief A single mention-linking request for LinkMentionsParallel.
struct MentionRequest {
  std::string surface;
  kb::UserId user = kb::kInvalidUser;
  kb::Timestamp time = 0;
};

/// Parallel per-mention variant; result i corresponds to requests[i].
std::vector<MentionLinkResult> LinkMentionsParallel(
    EntityLinker* linker, std::span<const MentionRequest> requests,
    uint32_t num_threads);

}  // namespace mel::core

#endif  // MEL_CORE_PARALLEL_LINKER_H_

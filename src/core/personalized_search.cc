#include "core/personalized_search.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace mel::core {

PersonalizedSearch::PersonalizedSearch(
    const EntityLinker* linker, const kb::ComplementedKnowledgebase* ckb)
    : linker_(linker), ckb_(ckb) {
  MEL_CHECK(linker != nullptr && ckb != nullptr);
}

SearchResult PersonalizedSearch::Query(std::string_view query_text,
                                       kb::UserId user, kb::Timestamp now,
                                       const SearchOptions& options) const {
  SearchResult result;
  auto detected =
      linker_->candidate_generator().DetectMentions(query_text);

  // Disambiguate each query mention for this user.
  std::vector<std::pair<kb::EntityId, double>> entities;  // entity, score
  for (const auto& mention : detected) {
    auto linked = linker_->LinkMention(mention.surface, user, now);
    uint32_t taken = 0;
    for (const auto& scored : linked.ranked) {
      if (taken++ >= options.top_k_entities) break;
      entities.emplace_back(scored.entity, scored.score);
    }
    result.interpretations.push_back(std::move(linked));
  }

  // Gather tweets linked to the winning entities, newest first, scored by
  // the entity's link score (freshness breaks ties within an entity).
  std::unordered_set<kb::TweetId> seen;
  for (const auto& [entity, score] : entities) {
    auto postings = ckb_->Postings(entity);
    uint32_t taken = 0;
    for (auto it = postings.rbegin(); it != postings.rend(); ++it) {
      if (it->time > now) continue;  // future tweets don't exist yet
      if (options.freshness_window > 0 &&
          it->time < now - options.freshness_window) {
        break;  // postings are time-sorted: everything older fails too
      }
      if (!seen.insert(it->tweet).second) continue;
      SearchHit hit;
      hit.tweet = it->tweet;
      hit.author = it->user;
      hit.time = it->time;
      hit.entity = entity;
      hit.relevance = score;
      result.hits.push_back(hit);
      if (++taken >= options.top_k_tweets) break;
    }
  }
  std::stable_sort(result.hits.begin(), result.hits.end(),
                   [](const SearchHit& a, const SearchHit& b) {
                     if (a.relevance != b.relevance) {
                       return a.relevance > b.relevance;
                     }
                     return a.time > b.time;  // fresher first
                   });
  if (result.hits.size() > options.top_k_tweets) {
    result.hits.resize(options.top_k_tweets);
  }
  return result;
}

}  // namespace mel::core

#include "core/entity_linker.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::core {

namespace {

// Per-stage accounting of the Eq.-1 pipeline. Pointers are resolved once
// (registry lookups take a mutex) and stay valid forever.
struct LinkerMetrics {
  metrics::Counter* mentions;
  metrics::Counter* unlinked;
  metrics::Counter* probable_new;
  metrics::Counter* candidates;
  metrics::Histogram* candidate_fanout;
  metrics::Histogram* candidate_gen_ns;
  metrics::Histogram* popularity_ns;
  metrics::Histogram* recency_ns;
  metrics::Histogram* interest_ns;
  metrics::Histogram* scoring_ns;
  metrics::Histogram* total_ns;
};

const LinkerMetrics& GetLinkerMetrics() {
  static const LinkerMetrics m = [] {
    auto& reg = metrics::Registry();
    LinkerMetrics lm;
    lm.mentions = reg.GetCounter("linker.mentions_total");
    lm.unlinked = reg.GetCounter("linker.mentions_unlinked_total");
    lm.probable_new = reg.GetCounter("linker.probable_new_entity_total");
    lm.candidates = reg.GetCounter("linker.candidates_total");
    lm.candidate_fanout = reg.GetHistogram("linker.candidate_fanout");
    lm.candidate_gen_ns = reg.GetHistogram("linker.stage.candidate_gen_ns");
    lm.popularity_ns = reg.GetHistogram("linker.stage.popularity_ns");
    lm.recency_ns = reg.GetHistogram("linker.stage.recency_ns");
    lm.interest_ns = reg.GetHistogram("linker.stage.interest_ns");
    lm.scoring_ns = reg.GetHistogram("linker.stage.scoring_ns");
    lm.total_ns = reg.GetHistogram("linker.link_mention_ns");
    return lm;
  }();
  return m;
}

}  // namespace

EntityLinker::EntityLinker(
    const kb::Knowledgebase* kb, kb::ComplementedKnowledgebase* ckb,
    const reach::WeightedReachability* reachability,
    const recency::PropagationNetwork* propagation_network,
    const LinkerOptions& options,
    const recency::RecencySource* recency_override)
    : kb_(kb),
      ckb_(ckb),
      options_(options),
      candidate_generator_(kb, options.fuzzy_max_edits),
      influence_(ckb, options.influence_method),
      interest_(&influence_, reachability, options.top_k_influential),
      window_(ckb, options.tau, options.theta1),
      propagator_(propagation_network,
                  recency_override != nullptr ? recency_override : &window_,
                  options.propagator),
      influential_index_(ckb, options.influence_method,
                         options.top_k_influential) {
  MEL_CHECK(kb != nullptr && ckb != nullptr);
  MEL_CHECK(&ckb->base() == kb);
}

MentionLinkResult EntityLinker::LinkMention(std::string_view mention,
                                            kb::UserId user,
                                            kb::Timestamp now) const {
  const LinkerMetrics& lm = GetLinkerMetrics();
  metrics::ScopedStageTimer total_timer(lm.total_ns);
  metrics::StageClock clock;
  lm.mentions->Increment();

  MentionLinkResult result;
  result.surface = std::string(mention);

  std::vector<kb::Candidate> candidates =
      candidate_generator_.Generate(mention);
  clock.Lap(lm.candidate_gen_ns);
  lm.candidates->Increment(candidates.size());
  if (clock.on()) lm.candidate_fanout->Record(candidates.size());
  if (candidates.empty()) {
    lm.unlinked->Increment();
    return result;
  }

  std::vector<kb::EntityId> entities;
  entities.reserve(candidates.size());
  for (const auto& c : candidates) entities.push_back(c.entity);

  // S_p (Eq. 2): tweet-count share among the candidates.
  std::vector<double> popularity(entities.size(), 0.0);
  {
    double total = 0;
    for (size_t i = 0; i < entities.size(); ++i) {
      popularity[i] = ckb_->LinkedTweetCount(entities[i]);
      total += popularity[i];
    }
    if (total > 0) {
      for (double& p : popularity) p /= total;
    }
  }
  clock.Lap(lm.popularity_ns);

  // S_r (Eq. 9 + Eq. 11): burst recency with optional propagation.
  std::vector<double> recency_scores = propagator_.CandidateScores(
      entities, now, options_.enable_recency_propagation);
  clock.Lap(lm.recency_ns);

  // S_in (Eq. 8): average weighted reachability to the most influential
  // users of each candidate's community, served through the backends'
  // count-only ScoreOnly path (no followee materialization). Like S_p and
  // S_r, the vector is normalized over the candidate set so that the
  // three features of Eq. 1 share a scale (raw average reachability is
  // orders of magnitude below the popularity/recency shares and alpha
  // would otherwise be meaningless).
  std::vector<double> interest(entities.size(), 0.0);
  {
    // Prefer the offline influential-user index when the mention resolved
    // through an exact surface (the fuzzy path merges several surfaces
    // and has no single cached entry).
    const uint32_t surface_id =
        options_.use_influential_index ? kb_->SurfaceId(mention)
                                       : kb::Knowledgebase::kInvalidSurface;
    double total = 0;
    for (size_t i = 0; i < entities.size(); ++i) {
      if (surface_id != kb::Knowledgebase::kInvalidSurface) {
        interest[i] = interest_.InterestOver(
            user, influential_index_.Get(surface_id, entities[i]));
      } else {
        auto influential = influence_.TopInfluential(
            entities[i], entities, options_.top_k_influential);
        interest[i] = interest_.InterestOver(user, influential);
      }
      total += interest[i];
    }
    if (total > 0) {
      for (double& v : interest) v /= total;
    }
  }
  clock.Lap(lm.interest_ns);

  std::vector<ScoredEntity> scored(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    ScoredEntity& s = scored[i];
    s.entity = entities[i];
    s.interest = interest[i];
    s.recency = recency_scores[i];
    s.popularity = popularity[i];
    s.score = options_.alpha * s.interest + options_.beta * s.recency +
              options_.gamma * s.popularity;
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredEntity& a, const ScoredEntity& b) {
                     return a.score > b.score;
                   });

  if (options_.reject_below_interest_threshold) {
    // Appendix D: a candidate the user has no interest in scores at most
    // beta + gamma; such candidates are suppressed and an empty result
    // flags a probable new entity / new meaning.
    const double threshold = options_.beta + options_.gamma;
    auto first_bad = std::find_if(scored.begin(), scored.end(),
                                  [&](const ScoredEntity& s) {
                                    return s.score <= threshold;
                                  });
    if (first_bad == scored.begin()) result.probable_new_entity = true;
    scored.erase(first_bad, scored.end());
  }

  if (scored.size() > options_.top_k_results) {
    scored.resize(options_.top_k_results);
  }
  result.ranked = std::move(scored);
  clock.Lap(lm.scoring_ns);
  if (result.probable_new_entity) lm.probable_new->Increment();
  if (!result.linked()) lm.unlinked->Increment();
  return result;
}

TweetLinkResult EntityLinker::LinkTweet(const kb::Tweet& tweet) const {
  TweetLinkResult result;
  for (const auto& detected :
       candidate_generator_.DetectMentions(tweet.text)) {
    result.mentions.push_back(
        LinkMention(detected.surface, tweet.user, tweet.time));
  }
  return result;
}

void EntityLinker::ConfirmLink(kb::EntityId entity, const kb::Tweet& tweet) {
  ckb_->AddLink(entity,
                kb::Posting{tweet.id, tweet.user, tweet.time});
  // The entity's community changed; cached influential users are stale
  // (Sec. 3.2.2: "update existing knowledge such as user influences").
  influential_index_.Invalidate(entity);
}

void EntityLinker::WarmUp() {
  ckb_->EnsureAllSorted();
  if (options_.use_influential_index) influential_index_.PrecomputeAll();
}

}  // namespace mel::core
